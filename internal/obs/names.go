package obs

// Canonical metric names. Dotted, grouped by subsystem. The wal.* group
// is accounted at the device boundary by the log manager; everything
// else is accounted by the runtime's message interceptors, recovery
// manager and transport.
const (
	// --- log manager, device boundary (internal/wal) ---

	// WALAppends counts records appended to the log buffer.
	WALAppends = "wal.appends"
	// WALForces counts forces that reached the device. Forcing an
	// already-clean log is free (paper Section 3.1's combined forces)
	// and is counted under WALCleanForces instead.
	WALForces = "wal.forces"
	// WALCleanForces counts force requests that found nothing dirty.
	WALCleanForces = "wal.clean_forces"
	// WALPhysicalWrites counts buffer flushes into segment files.
	WALPhysicalWrites = "wal.physical_writes"
	// WALBytesWritten totals payload+framing bytes flushed.
	WALBytesWritten = "wal.bytes_written"
	// WALTrimmedBytes totals log space reclaimed by TrimHead.
	WALTrimmedBytes = "wal.trimmed_bytes"
	// WALForceMicros is the latency distribution of device forces.
	WALForceMicros = "wal.force_micros"
	// WALAppendBytes is the size distribution of appended records.
	WALAppendBytes = "wal.append_bytes"

	// --- group commit (internal/wal group.go). The batch metrics are
	// observed once per flusher device sync; syncs_saved also counts
	// direct-path requests that piggybacked on a sync in flight, so
	// device syncs (wal.forces) + wal.group.syncs_saved + clean forces
	// add up to the total force requests. ---

	// WALGroupBatchSize is the waiters-per-device-sync distribution of
	// the group-commit flusher (mean > 1 means forces are combining).
	WALGroupBatchSize = "wal.group.batch_size"
	// WALGroupWaitMicros is how long force requesters waited from
	// enqueue to wake (commit window + sync latency).
	WALGroupWaitMicros = "wal.group.wait_micros"
	// WALGroupSyncsSaved counts force requests satisfied by a device
	// sync they did not issue — the paper's combined forces, made
	// deliberate.
	WALGroupSyncsSaved = "wal.group.syncs_saved"
	// WALGroupBackpressure counts force requests that blocked because
	// the flusher's queue was full.
	WALGroupBackpressure = "wal.group.backpressure"

	// --- sharded log (internal/wal set.go). A Set's shards report the
	// plain wal.* and wal.group.* metrics into the same registry, so
	// those stay process totals; the wal.shard.* group covers what is
	// specific to sharding. ---

	// WALShardAppends counts records appended through a sharded Set
	// (zero on single-Log processes).
	WALShardAppends = "wal.shard.appends"
	// WALShardSpread is the distribution of appendable-shard indices
	// receiving appends — a skewed histogram means the CompID hash is
	// not balancing the offered load.
	WALShardSpread = "wal.shard.spread"
	// WALShardStreams is the appendable shard count observed at each
	// Set open.
	WALShardStreams = "wal.shard.streams"
	// WALShardReshards counts reshard eras appended to a log (an open
	// with a shard count different from the layout on disk).
	WALShardReshards = "wal.shard.reshards"

	// --- log records by kind (the paper's message kinds 1-4 plus
	// creation, state and checkpoint records) ---

	RecCreation      = "rec.creation"
	RecIncoming      = "rec.incoming"       // message 1, long record
	RecReplySent     = "rec.reply_sent"     // message 2, short record (Algorithm 3)
	RecReplyContent  = "rec.reply_content"  // message 2 in full / lazy last-call reply
	RecOutgoing      = "rec.outgoing"       // message 3 (baseline only)
	RecOutgoingReply = "rec.outgoing_reply" // message 4
	RecCtxState      = "rec.ctx_state"
	RecBeginCkpt     = "rec.begin_ckpt"
	RecCkptCtxTable  = "rec.ckpt_ctx_table"
	RecCkptLastCall  = "rec.ckpt_last_call"
	RecEndCkpt       = "rec.end_ckpt"
	// RecDisciplineChange counts adaptive discipline-change records:
	// promotions, demotions and checkpoint re-emissions made durable.
	RecDisciplineChange = "rec.discipline_change"

	// --- interceptions by logging discipline (server side of each
	// incoming call; subordinate calls are client-side direct dispatch) ---

	InterceptAlgo1       = "intercept.algo1"       // baseline persistent
	InterceptAlgo2       = "intercept.algo2"       // optimized persistent↔persistent
	InterceptAlgo3       = "intercept.algo3"       // optimized, external client
	InterceptFunctional  = "intercept.functional"  // Algorithm 4 server
	InterceptReadOnly    = "intercept.readonly"    // Algorithm 5 treatment
	InterceptSubordinate = "intercept.subordinate" // unlogged in-context dispatch

	// --- per-site force accounting (the paper's Tables 4-5 "forces per
	// call" argument). Only forces that reached the device are counted;
	// a clean-log force counts nowhere here. ---

	ForceAtIncoming      = "force.at_incoming"       // server, after logging message 1
	ForceAtReply         = "force.at_reply"          // server, at message 2 send
	ForceAtSend          = "force.at_send"           // client, at message 3 send
	ForceAtOutgoingReply = "force.at_outgoing_reply" // client, after message 4 (baseline)

	// Forces the optimized disciplines elided (counted at the client
	// where the baseline would have forced).
	ElideFunctional = "force.elided_functional" // Algorithm 4: pure server
	ElideReadOnly   = "force.elided_readonly"   // Algorithm 5: read-only call
	ElideMultiCall  = "force.elided_multicall"  // Section 3.5 first-call skip

	// --- checkpointing and log management ---

	Checkpoints = "ckpt.process"
	StateSaves  = "ckpt.state_saves"
	Trims       = "ckpt.trims"

	// --- recovery ---

	RecoveryRuns        = "recovery.runs"
	ContextsRestored    = "recovery.contexts_restored"
	ReplayedCalls       = "recovery.replayed_calls"
	SuppressedSends     = "recovery.suppressed_sends"
	RecoveryPass1Micros = "recovery.pass1_micros"
	RecoveryPass2Micros = "recovery.pass2_micros"
	RecoveryMicros      = "recovery.total_micros"

	// --- parallel Pass 2 (Config.Recovery). The demux reader and the
	// worker slots are accounted per recovery run; queue depths are
	// observed at each enqueue, so the histogram's shape shows whether
	// the bounded queues ever filled (stalls count the enqueues that
	// found a queue full and blocked the reader). ---

	// RecoveryPass2Workers is the replay-worker-slots-used distribution,
	// observed once per parallel recovery run.
	RecoveryPass2Workers = "recovery.pass2.workers"
	// RecoveryPass2QueueDepth is the per-context replay queue depth at
	// each enqueue.
	RecoveryPass2QueueDepth = "recovery.pass2.queue_depth"
	// RecoveryPass2Demuxed counts records the Pass-2 reader routed into
	// per-context replay queues.
	RecoveryPass2Demuxed = "recovery.pass2.demuxed_records"
	// RecoveryPass2Stalls counts enqueues that found the target queue
	// full — backpressure on the single reader.
	RecoveryPass2Stalls = "recovery.pass2.queue_stalls"

	// --- lazy admission (Config.Recovery.Mode = RecoveryLazy). The
	// process opens after Pass 1; these account how the deferred Pass-2
	// work actually got done and what admission latency looked like.
	// Durations are universe-clock microseconds (model time under a
	// virtual bench clock), unlike the wall-time recovery.*_micros. ---

	// RecoveryLazyOnDemand counts contexts whose backlog replayed
	// because a call touched them first.
	RecoveryLazyOnDemand = "recovery.lazy.on_demand_replays"
	// RecoveryLazyBackground counts contexts drained by the background
	// replayer before any call arrived.
	RecoveryLazyBackground = "recovery.lazy.background_replays"
	// RecoveryLazyCtxReplayMicros is the per-context backlog replay
	// latency — what a first-touch call waits on top of its own work.
	RecoveryLazyCtxReplayMicros = "recovery.lazy.ctx_replay_micros"
	// RecoveryLazyTTFCMicros is time-to-first-call: recovery start to
	// the first call admitted past a ready gate — perceived downtime.
	RecoveryLazyTTFCMicros = "recovery.lazy.ttfc_micros"

	// --- adaptive logging disciplines (internal/core adaptive.go).
	// The controller observes each (component, method)'s interaction
	// pattern per epoch and promotes/demotes its effective discipline;
	// every transition is made durable as a discipline-change record
	// before it takes effect. Counters account transitions and the
	// forces the promoted disciplines elided (counted where the baseline
	// discipline would have forced); gauges are the current number of
	// methods under each promoted treatment. ---

	// AdaptivePromotions counts discipline promotions applied (durable
	// record forced, in-memory state flipped).
	AdaptivePromotions = "adaptive.promotions"
	// AdaptiveDemotions counts demotions, including read-only guard
	// violations.
	AdaptiveDemotions = "adaptive.demotions"
	// AdaptiveROViolations counts read-only guard trips: a promoted
	// method mutated state or made an outgoing call, and was demoted
	// with a forced state save before its reply externalized.
	AdaptiveROViolations = "adaptive.ro_violations"
	// AdaptiveEpochs counts controller epoch boundaries crossed.
	AdaptiveEpochs = "adaptive.epochs"
	// AdaptiveForceAtChange is the per-site force counter of the
	// discipline-change commit point (the record is forced before the
	// new discipline takes effect).
	AdaptiveForceAtChange = "adaptive.force.at_change"

	// Forces elided because the controller promoted the method past the
	// configured baseline (the adaptive analogue of force.elided_*).
	AdaptiveElideAlgo2    = "adaptive.elided.algo2"     // message-1 forces skipped at promoted servers
	AdaptiveElideReadOnly = "adaptive.elided.readonly"  // whole-discipline skips at RO-promoted methods
	AdaptiveElideMulti    = "adaptive.elided.multicall" // send forces skipped by promoted multi-call elision

	// Current discipline gauges: how many (component, method) pairs are
	// under each promoted treatment right now.
	AdaptiveDiscAlgo2    = "adaptive.disc.algo2"
	AdaptiveDiscReadOnly = "adaptive.disc.readonly"
	AdaptiveDiscMulti    = "adaptive.disc.multicall"

	// --- rpc / transport ---

	RPCCalls   = "rpc.calls"
	RPCRetries = "rpc.retries"
	// RPCCallMicros is the client-observed round trip including
	// redrives (wall time; under a scaled bench clock it is scaled
	// wall time, not model time).
	RPCCallMicros = "rpc.call_micros"
	// ServeExecs counts method executions dispatched into components;
	// ServeExecMicros is their duration distribution.
	ServeExecs      = "serve.execs"
	ServeExecMicros = "serve.exec_micros"

	TransportSends      = "transport.sends"
	TransportSendErrors = "transport.send_errors"
	TransportBytesOut   = "transport.bytes_out"
	TransportBytesIn    = "transport.bytes_in"
	TransportRTMicros   = "transport.rt_micros"

	// --- envelope codec (internal/msg). Bytes are message-envelope
	// bytes as framed for the transport and the log, counted at encode
	// (out) and decode (in) time; the pool counters expose the scratch
	// buffer hit rate of the zero-allocation hot path — a falling hit
	// rate means some caller leaks buffers instead of FreeBuf-ing. ---

	// CodecBytesOut totals envelope bytes produced by EncodeCall and
	// EncodeReply.
	CodecBytesOut = "codec.bytes_out"
	// CodecBytesIn totals envelope bytes consumed by DecodeCall and
	// DecodeReply.
	CodecBytesIn = "codec.bytes_in"
	// CodecPoolHits counts scratch-buffer requests served from the pool
	// with a warm (full-capacity) buffer.
	CodecPoolHits = "codec.pool_hits"
	// CodecPoolMisses counts scratch-buffer requests that had to grow a
	// fresh buffer.
	CodecPoolMisses = "codec.pool_misses"
	// CodecLegacyDecodes counts envelopes and records decoded through
	// the gob fallback path (pre-binary-codec format).
	CodecLegacyDecodes = "codec.legacy_decodes"

	// --- causal tracing (internal/obs/trace). The stage histograms are
	// per-leg latency distributions of traced interactions in
	// universe-clock microseconds — under a scaled or virtual bench
	// clock they are model time, unlike the wallclock-allowlisted
	// serve/rpc histograms. ---

	// TraceSpans counts spans recorded into flight recorders.
	TraceSpans = "trace.spans"
	// TraceRingOverwrites counts spans that displaced an older span
	// from a full ring — a rising rate means the ring is undersized
	// for the retention you want at crash time.
	TraceRingOverwrites = "trace.ring_overwrites"

	TraceClientInterceptMicros  = "trace.stage.client_intercept_micros"
	TraceTransportMicros        = "trace.stage.transport_micros"
	TraceServerInterceptMicros  = "trace.stage.server_intercept_micros"
	TraceWALAppendMicros        = "trace.stage.wal_append_micros"
	TraceSyncWaitMicros         = "trace.stage.sync_wait_micros"
	TraceExecuteMicros          = "trace.stage.execute_micros"
	TraceReplyMicros            = "trace.stage.reply_micros"
	TraceClientResumeMicros     = "trace.stage.client_resume_micros"
	TraceRecoveryScanMicros     = "trace.stage.recovery_scan_micros"
	TraceReplayQueueWaitMicros  = "trace.stage.replay_queue_wait_micros"
	TraceReplayMicros           = "trace.stage.replay_micros"
	TraceDemandReplayMicros     = "trace.stage.demand_replay_micros"
	TraceDisciplineChangeMicros = "trace.stage.discipline_change_micros"
)

// TraceStageMicros lists the per-stage trace histograms in pipeline
// order, for breakdown reports (phoenix-bench -trace, phoenix-trace).
var TraceStageMicros = []string{
	TraceClientInterceptMicros,
	TraceTransportMicros,
	TraceServerInterceptMicros,
	TraceWALAppendMicros,
	TraceSyncWaitMicros,
	TraceExecuteMicros,
	TraceReplyMicros,
	TraceClientResumeMicros,
	TraceRecoveryScanMicros,
	TraceReplayQueueWaitMicros,
	TraceReplayMicros,
	TraceDemandReplayMicros,
	TraceDisciplineChangeMicros,
}

// WALMetrics pre-resolves the device-boundary metrics for the log
// manager's hot path. All fields of the view returned for a nil
// registry are nil, which Counter/Histogram methods tolerate.
type WALMetrics struct {
	Appends        *Counter
	Forces         *Counter
	CleanForces    *Counter
	PhysicalWrites *Counter
	BytesWritten   *Counter
	TrimmedBytes   *Counter
	ForceMicros    *Histogram
	AppendBytes    *Histogram

	GroupBatchSize    *Histogram
	GroupWaitMicros   *Histogram
	GroupSyncsSaved   *Counter
	GroupBackpressure *Counter

	ShardAppends  *Counter
	ShardSpread   *Histogram
	ShardStreams  *Histogram
	ShardReshards *Counter
}

// WALView resolves the wal.* bundle from r.
func WALView(r *Registry) *WALMetrics {
	return &WALMetrics{
		Appends:        r.Counter(WALAppends),
		Forces:         r.Counter(WALForces),
		CleanForces:    r.Counter(WALCleanForces),
		PhysicalWrites: r.Counter(WALPhysicalWrites),
		BytesWritten:   r.Counter(WALBytesWritten),
		TrimmedBytes:   r.Counter(WALTrimmedBytes),
		ForceMicros:    r.Histogram(WALForceMicros),
		AppendBytes:    r.Histogram(WALAppendBytes),

		GroupBatchSize:    r.Histogram(WALGroupBatchSize),
		GroupWaitMicros:   r.Histogram(WALGroupWaitMicros),
		GroupSyncsSaved:   r.Counter(WALGroupSyncsSaved),
		GroupBackpressure: r.Counter(WALGroupBackpressure),

		ShardAppends:  r.Counter(WALShardAppends),
		ShardSpread:   r.Histogram(WALShardSpread),
		ShardStreams:  r.Histogram(WALShardStreams),
		ShardReshards: r.Counter(WALShardReshards),
	}
}

// CodecMetrics pre-resolves the envelope-codec metrics for the
// per-message hot path of internal/msg. Like the other views, every
// field of a nil-registry view is nil and the update methods tolerate
// it.
type CodecMetrics struct {
	BytesOut      *Counter
	BytesIn       *Counter
	PoolHits      *Counter
	PoolMisses    *Counter
	LegacyDecodes *Counter
}

// CodecView resolves the codec.* bundle from r.
func CodecView(r *Registry) *CodecMetrics {
	return &CodecMetrics{
		BytesOut:      r.Counter(CodecBytesOut),
		BytesIn:       r.Counter(CodecBytesIn),
		PoolHits:      r.Counter(CodecPoolHits),
		PoolMisses:    r.Counter(CodecPoolMisses),
		LegacyDecodes: r.Counter(CodecLegacyDecodes),
	}
}

// TraceMetrics pre-resolves the trace.* bundle for the flight
// recorder's hot path: the span/overwrite counters and one latency
// histogram per stage (the trace package maps them into an array
// indexed by its Stage enum). Nil-registry views are all-nil and the
// update methods tolerate it.
type TraceMetrics struct {
	Spans          *Counter
	RingOverwrites *Counter

	ClientInterceptMicros  *Histogram
	TransportMicros        *Histogram
	ServerInterceptMicros  *Histogram
	WALAppendMicros        *Histogram
	SyncWaitMicros         *Histogram
	ExecuteMicros          *Histogram
	ReplyMicros            *Histogram
	ClientResumeMicros     *Histogram
	RecoveryScanMicros     *Histogram
	ReplayQueueWaitMicros  *Histogram
	ReplayMicros           *Histogram
	DemandReplayMicros     *Histogram
	DisciplineChangeMicros *Histogram
}

// TraceView resolves the trace.* bundle from r.
func TraceView(r *Registry) *TraceMetrics {
	return &TraceMetrics{
		Spans:          r.Counter(TraceSpans),
		RingOverwrites: r.Counter(TraceRingOverwrites),

		ClientInterceptMicros:  r.Histogram(TraceClientInterceptMicros),
		TransportMicros:        r.Histogram(TraceTransportMicros),
		ServerInterceptMicros:  r.Histogram(TraceServerInterceptMicros),
		WALAppendMicros:        r.Histogram(TraceWALAppendMicros),
		SyncWaitMicros:         r.Histogram(TraceSyncWaitMicros),
		ExecuteMicros:          r.Histogram(TraceExecuteMicros),
		ReplyMicros:            r.Histogram(TraceReplyMicros),
		ClientResumeMicros:     r.Histogram(TraceClientResumeMicros),
		RecoveryScanMicros:     r.Histogram(TraceRecoveryScanMicros),
		ReplayQueueWaitMicros:  r.Histogram(TraceReplayQueueWaitMicros),
		ReplayMicros:           r.Histogram(TraceReplayMicros),
		DemandReplayMicros:     r.Histogram(TraceDemandReplayMicros),
		DisciplineChangeMicros: r.Histogram(TraceDisciplineChangeMicros),
	}
}

// RuntimeMetrics pre-resolves the interception, checkpoint, recovery
// and rpc metrics for the core runtime's hot paths.
type RuntimeMetrics struct {
	RecCreation         *Counter
	RecIncoming         *Counter
	RecReplySent        *Counter
	RecReplyContent     *Counter
	RecOutgoing         *Counter
	RecOutgoingReply    *Counter
	RecCtxState         *Counter
	RecBeginCkpt        *Counter
	RecCkptCtxTable     *Counter
	RecCkptLastCall     *Counter
	RecEndCkpt          *Counter
	RecDisciplineChange *Counter

	InterceptAlgo1       *Counter
	InterceptAlgo2       *Counter
	InterceptAlgo3       *Counter
	InterceptFunctional  *Counter
	InterceptReadOnly    *Counter
	InterceptSubordinate *Counter

	ForceAtIncoming      *Counter
	ForceAtReply         *Counter
	ForceAtSend          *Counter
	ForceAtOutgoingReply *Counter
	ElideFunctional      *Counter
	ElideReadOnly        *Counter
	ElideMultiCall       *Counter

	Checkpoints *Counter
	StateSaves  *Counter
	Trims       *Counter

	RecoveryRuns            *Counter
	ContextsRestored        *Counter
	ReplayedCalls           *Counter
	SuppressedSends         *Counter
	RecoveryPass1Micros     *Histogram
	RecoveryPass2Micros     *Histogram
	RecoveryMicros          *Histogram
	RecoveryPass2Workers    *Histogram
	RecoveryPass2QueueDepth *Histogram
	RecoveryPass2Demuxed    *Counter
	RecoveryPass2Stalls     *Counter

	RecoveryLazyOnDemand        *Counter
	RecoveryLazyBackground      *Counter
	RecoveryLazyCtxReplayMicros *Histogram
	RecoveryLazyTTFCMicros      *Histogram

	AdaptivePromotions    *Counter
	AdaptiveDemotions     *Counter
	AdaptiveROViolations  *Counter
	AdaptiveEpochs        *Counter
	AdaptiveForceAtChange *Counter
	AdaptiveElideAlgo2    *Counter
	AdaptiveElideReadOnly *Counter
	AdaptiveElideMulti    *Counter
	AdaptiveDiscAlgo2     *Gauge
	AdaptiveDiscReadOnly  *Gauge
	AdaptiveDiscMulti     *Gauge

	RPCCalls        *Counter
	RPCRetries      *Counter
	RPCCallMicros   *Histogram
	ServeExecs      *Counter
	ServeExecMicros *Histogram
}

// RuntimeView resolves the runtime bundle from r.
func RuntimeView(r *Registry) *RuntimeMetrics {
	return &RuntimeMetrics{
		RecCreation:         r.Counter(RecCreation),
		RecIncoming:         r.Counter(RecIncoming),
		RecReplySent:        r.Counter(RecReplySent),
		RecReplyContent:     r.Counter(RecReplyContent),
		RecOutgoing:         r.Counter(RecOutgoing),
		RecOutgoingReply:    r.Counter(RecOutgoingReply),
		RecCtxState:         r.Counter(RecCtxState),
		RecBeginCkpt:        r.Counter(RecBeginCkpt),
		RecCkptCtxTable:     r.Counter(RecCkptCtxTable),
		RecCkptLastCall:     r.Counter(RecCkptLastCall),
		RecEndCkpt:          r.Counter(RecEndCkpt),
		RecDisciplineChange: r.Counter(RecDisciplineChange),

		InterceptAlgo1:       r.Counter(InterceptAlgo1),
		InterceptAlgo2:       r.Counter(InterceptAlgo2),
		InterceptAlgo3:       r.Counter(InterceptAlgo3),
		InterceptFunctional:  r.Counter(InterceptFunctional),
		InterceptReadOnly:    r.Counter(InterceptReadOnly),
		InterceptSubordinate: r.Counter(InterceptSubordinate),

		ForceAtIncoming:      r.Counter(ForceAtIncoming),
		ForceAtReply:         r.Counter(ForceAtReply),
		ForceAtSend:          r.Counter(ForceAtSend),
		ForceAtOutgoingReply: r.Counter(ForceAtOutgoingReply),
		ElideFunctional:      r.Counter(ElideFunctional),
		ElideReadOnly:        r.Counter(ElideReadOnly),
		ElideMultiCall:       r.Counter(ElideMultiCall),

		Checkpoints: r.Counter(Checkpoints),
		StateSaves:  r.Counter(StateSaves),
		Trims:       r.Counter(Trims),

		RecoveryRuns:            r.Counter(RecoveryRuns),
		ContextsRestored:        r.Counter(ContextsRestored),
		ReplayedCalls:           r.Counter(ReplayedCalls),
		SuppressedSends:         r.Counter(SuppressedSends),
		RecoveryPass1Micros:     r.Histogram(RecoveryPass1Micros),
		RecoveryPass2Micros:     r.Histogram(RecoveryPass2Micros),
		RecoveryMicros:          r.Histogram(RecoveryMicros),
		RecoveryPass2Workers:    r.Histogram(RecoveryPass2Workers),
		RecoveryPass2QueueDepth: r.Histogram(RecoveryPass2QueueDepth),
		RecoveryPass2Demuxed:    r.Counter(RecoveryPass2Demuxed),
		RecoveryPass2Stalls:     r.Counter(RecoveryPass2Stalls),

		RecoveryLazyOnDemand:        r.Counter(RecoveryLazyOnDemand),
		RecoveryLazyBackground:      r.Counter(RecoveryLazyBackground),
		RecoveryLazyCtxReplayMicros: r.Histogram(RecoveryLazyCtxReplayMicros),
		RecoveryLazyTTFCMicros:      r.Histogram(RecoveryLazyTTFCMicros),

		AdaptivePromotions:    r.Counter(AdaptivePromotions),
		AdaptiveDemotions:     r.Counter(AdaptiveDemotions),
		AdaptiveROViolations:  r.Counter(AdaptiveROViolations),
		AdaptiveEpochs:        r.Counter(AdaptiveEpochs),
		AdaptiveForceAtChange: r.Counter(AdaptiveForceAtChange),
		AdaptiveElideAlgo2:    r.Counter(AdaptiveElideAlgo2),
		AdaptiveElideReadOnly: r.Counter(AdaptiveElideReadOnly),
		AdaptiveElideMulti:    r.Counter(AdaptiveElideMulti),
		AdaptiveDiscAlgo2:     r.Gauge(AdaptiveDiscAlgo2),
		AdaptiveDiscReadOnly:  r.Gauge(AdaptiveDiscReadOnly),
		AdaptiveDiscMulti:     r.Gauge(AdaptiveDiscMulti),

		RPCCalls:        r.Counter(RPCCalls),
		RPCRetries:      r.Counter(RPCRetries),
		RPCCallMicros:   r.Histogram(RPCCallMicros),
		ServeExecs:      r.Counter(ServeExecs),
		ServeExecMicros: r.Histogram(ServeExecMicros),
	}
}
