package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugPath is where a debug server exposes the registry, in the
// spirit of expvar's /debug/vars.
const DebugPath = "/debug/phoenixvars"

// Handler returns an http.Handler that serves the registry as a JSON
// Snapshot. Mount it at DebugPath (or anywhere).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
}

// DebugServer is a live metrics endpoint for long-running processes.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// Mount pairs an extra handler with the path to serve it at, so
// subsystems outside obs (the trace flight recorder's
// /debug/phoenixtrace) can ride on the same debug endpoint without obs
// importing them.
type Mount struct {
	Path    string
	Handler http.Handler
}

// StartDebugServer listens on addr (e.g. "127.0.0.1:6060"; port 0 picks
// a free one) and serves r at DebugPath, plus the standard pprof
// profiling endpoints under /debug/pprof/ (the server uses its own mux,
// so net/http/pprof's DefaultServeMux registrations must be re-homed
// here) and any extra mounts. The server runs on its own goroutine
// until Close.
func StartDebugServer(addr string, r *Registry, mounts ...Mount) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle(DebugPath, Handler(r))
	for _, m := range mounts {
		mux.Handle(m.Path, m.Handler)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with port 0).
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the endpoint.
func (d *DebugServer) Close() error { return d.srv.Close() }
