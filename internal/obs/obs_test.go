package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.y")
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("x.y") != c {
		t.Error("second lookup returned a different counter")
	}
	// nil receivers are no-ops, so unobserved subsystems need no guards.
	var nc *Counter
	nc.Inc()
	nc.Add(5)
	if nc.Load() != 0 {
		t.Error("nil counter should load 0")
	}
	var nh *Histogram
	nh.Observe(7)
	var nr *Registry
	if nr.Counter("a") != nil || nr.Histogram("b") != nil {
		t.Error("nil registry should hand out nil metrics")
	}
	if !nr.Snapshot().Empty() {
		t.Error("nil registry snapshot should be empty")
	}
}

func TestHistogramBucketsAndMean(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []int64{0, 1, 2, 3, 1000, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Sum != 1006 {
		t.Fatalf("sum = %d, want 1006", s.Sum)
	}
	if s.Max != 1000 {
		t.Fatalf("max = %d, want 1000", s.Max)
	}
	// 0 and the clamped -5 land in bucket 0; 1 in bucket 1; 2,3 in
	// bucket 2; 1000 in bucket 10.
	want := map[int]int64{0: 2, 1: 1, 2: 2, 10: 1}
	for i, n := range want {
		if s.Buckets[i] != n {
			t.Errorf("bucket %d = %d, want %d", i, s.Buckets[i], n)
		}
	}
	if got := s.Mean(); got != 1006.0/6 {
		t.Errorf("mean = %v", got)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("calls")
	h := r.Histogram("lat")
	c.Add(10)
	h.Observe(5)
	base := r.Snapshot()
	c.Add(7)
	h.Observe(9)
	d := r.Snapshot().Diff(base)
	if d.Counter("calls") != 7 {
		t.Errorf("diffed counter = %d, want 7", d.Counter("calls"))
	}
	hd := d.HistogramFor("lat")
	if hd.Count != 1 || hd.Sum != 9 {
		t.Errorf("diffed histogram = %+v", hd)
	}
	if d.Counter("absent") != 0 {
		t.Error("absent counter should read 0")
	}
	if d.Empty() {
		t.Error("diff with activity should not be Empty")
	}
	if !r.Snapshot().Diff(r.Snapshot()).Empty() {
		t.Error("self-diff should be Empty")
	}
}

func TestSnapshotWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.two").Add(2)
	r.Counter("a.one").Add(1)
	r.Counter("z.zero") // stays zero: omitted
	r.Histogram("lat").Observe(10)
	var sb strings.Builder
	r.Snapshot().WriteText(&sb, "  ")
	out := sb.String()
	if !strings.Contains(out, "a.one") || !strings.Contains(out, "b.two") {
		t.Errorf("missing counters in %q", out)
	}
	if strings.Contains(out, "z.zero") {
		t.Errorf("zero counter rendered in %q", out)
	}
	if strings.Index(out, "a.one") > strings.Index(out, "b.two") {
		t.Errorf("output not sorted: %q", out)
	}
	if !strings.Contains(out, "lat") || !strings.Contains(out, "count=1") {
		t.Errorf("histogram missing in %q", out)
	}
}

func TestViewsResolveAllFields(t *testing.T) {
	r := NewRegistry()
	w := WALView(r)
	if w.Forces == nil || w.CleanForces == nil || w.ForceMicros == nil {
		t.Fatal("WALView left fields nil")
	}
	m := RuntimeView(r)
	if m.RecOutgoing == nil || m.ForceAtSend == nil || m.SuppressedSends == nil ||
		m.RPCCallMicros == nil || m.InterceptSubordinate == nil {
		t.Fatal("RuntimeView left fields nil")
	}
	// Views over the same registry share state.
	w.Forces.Inc()
	if WALView(r).Forces.Load() != 1 {
		t.Error("views over one registry must share counters")
	}
	// Nil-registry views are safe to use.
	nw := WALView(nil)
	nw.Forces.Inc()
	nw.ForceMicros.Observe(3)
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter(fmt.Sprintf("c%d", i%10)).Inc()
				r.Histogram("h").Observe(int64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for i := 0; i < 10; i++ {
		total += r.Counter(fmt.Sprintf("c%d", i)).Load()
	}
	if total != 8000 {
		t.Fatalf("lost updates: total = %d, want 8000", total)
	}
	if got := r.Histogram("h").Snapshot().Count; got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if len(r.Names()) != 11 {
		t.Fatalf("names = %v", r.Names())
	}
}

func TestDebugServer(t *testing.T) {
	r := NewRegistry()
	r.Counter(WALForces).Add(3)
	r.Histogram(RPCCallMicros).Observe(250)
	d, err := StartDebugServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	resp, err := http.Get("http://" + d.Addr() + DebugPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if snap.Counter(WALForces) != 3 {
		t.Errorf("served forces = %d, want 3", snap.Counter(WALForces))
	}
	if snap.HistogramFor(RPCCallMicros).Count != 1 {
		t.Errorf("served histogram = %+v", snap.HistogramFor(RPCCallMicros))
	}
}

func TestDefaultRegistryIsShared(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default must return one registry")
	}
}
