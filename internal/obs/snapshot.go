package obs

import (
	"fmt"
	"io"
	"sort"
)

// HistogramSnapshot is a point-in-time copy of a Histogram. Buckets
// maps power-of-two bucket index i (values v with bits.Len64(v) == i)
// to its count; empty buckets are omitted.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Max     int64         `json:"max"`
	Buckets map[int]int64 `json:"buckets,omitempty"`
}

// Mean returns the average observed value (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile approximates the q-quantile (q in [0,1]) of the observed
// values as the midpoint of the power-of-two bucket holding the
// rank-q observation (bucket i holds values v with bits.Len64(v) == i,
// i.e. [2^(i-1), 2^i)). Resolution is a factor of two — enough for
// p50/p99 stage breakdowns, not for tight SLO math. Returns 0 when
// empty.
func (h HistogramSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(h.Count-1)) + 1 // 1-based rank of the target observation
	var seen int64
	for i := 0; i < 64; i++ {
		n := h.Buckets[i]
		if n == 0 {
			continue
		}
		seen += n
		if seen >= rank {
			if i == 0 {
				return 0 // bucket 0 holds only the value 0
			}
			lo := int64(1) << (i - 1)
			hi := int64(1)<<uint(i) - 1
			if h.Max > 0 && hi > h.Max {
				hi = h.Max
			}
			return (lo + hi) / 2
		}
	}
	return h.Max
}

// Sub returns the histogram activity since base. Max is carried from
// the newer snapshot (a maximum cannot be un-observed).
func (h HistogramSnapshot) Sub(base HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Count: h.Count - base.Count,
		Sum:   h.Sum - base.Sum,
		Max:   h.Max,
	}
	for i, n := range h.Buckets {
		if d := n - base.Buckets[i]; d != 0 {
			if out.Buckets == nil {
				out.Buckets = make(map[int]int64)
			}
			out.Buckets[i] = d
		}
	}
	return out
}

// Snapshot is a point-in-time copy of a Registry. It is a plain value:
// JSON-encodable (bench embeds it in its output, the debug endpoint
// serves it) and comparable via Diff (tests assert paper invariants on
// the delta of a workload).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
}

// Counter returns the named counter's value (0 when absent), so tests
// read `snap.Counter(obs.RecOutgoing)` without existence checks.
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns the named gauge's level (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// HistogramFor returns the named histogram snapshot (zero when absent).
func (s Snapshot) HistogramFor(name string) HistogramSnapshot { return s.Histograms[name] }

// Diff returns the activity between base and s: every counter and
// histogram minus its value in base. Metrics absent from base diff
// against zero; metrics absent from s are omitted.
func (s Snapshot) Diff(base Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - base.Counters[name]
	}
	for name, h := range s.Histograms {
		out.Histograms[name] = h.Sub(base.Histograms[name])
	}
	// Gauges are levels, not activity: a diff carries the newer level
	// verbatim (like a histogram's Max — a level cannot be un-set).
	if len(s.Gauges) > 0 {
		out.Gauges = make(map[string]int64, len(s.Gauges))
		for name, v := range s.Gauges {
			out.Gauges[name] = v
		}
	}
	return out
}

// Empty reports whether the snapshot records no activity at all (all
// counters zero and all histograms empty).
func (s Snapshot) Empty() bool {
	for _, v := range s.Counters {
		if v != 0 {
			return false
		}
	}
	for _, h := range s.Histograms {
		if h.Count != 0 {
			return false
		}
	}
	return true
}

// WriteText renders the snapshot sorted by name, one metric per line,
// skipping zero counters and empty histograms. indent prefixes every
// line (the bench harness nests snapshots under a header).
func (s Snapshot) WriteText(w io.Writer, indent string) {
	names := make([]string, 0, len(s.Counters))
	for n, v := range s.Counters {
		if v != 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%s%-28s %d\n", indent, n, s.Counters[n])
	}
	hnames := make([]string, 0, len(s.Histograms))
	for n, h := range s.Histograms {
		if h.Count != 0 {
			hnames = append(hnames, n)
		}
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := s.Histograms[n]
		fmt.Fprintf(w, "%s%-28s count=%d mean=%.1f max=%d\n", indent, n, h.Count, h.Mean(), h.Max)
	}
	gnames := make([]string, 0, len(s.Gauges))
	for n, v := range s.Gauges {
		if v != 0 {
			gnames = append(gnames, n)
		}
	}
	sort.Strings(gnames)
	for _, n := range gnames {
		fmt.Fprintf(w, "%s%-28s %d (gauge)\n", indent, n, s.Gauges[n])
	}
}
