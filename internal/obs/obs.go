// Package obs is the runtime observability layer of the Phoenix/App
// reproduction: a lock-free metrics registry whose counters and
// histograms make the paper's Section 3 accounting claims — "Algorithm 2
// saves two forces and two writes per persistent↔persistent call",
// "Algorithm 5 logs the reply without forcing" — machine-checkable at
// runtime.
//
// The registry is deliberately small: named monotonic counters and
// power-of-two histograms, all updated with atomics so the interception
// hot path (every logged message crosses it) never takes a lock. Names
// are dotted strings grouped by subsystem (wal.*, rec.*, intercept.*,
// force.*, recovery.*, rpc.*, transport.*); the canonical set lives in
// names.go next to typed bundles that pre-resolve the hot-path pointers.
//
// Snapshot captures every metric at an instant; Diff subtracts a base
// snapshot, which is how the bench harness reports per-run deltas and
// how tests assert paper invariants ("zero send-message writes during
// this workload") without the registry ever being reset.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonic atomic counter. The zero value is ready to
// use; a nil *Counter ignores updates, so call sites need no guards
// when a subsystem runs unobserved.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value (0 for nil).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic level — a value that goes up and down, unlike the
// monotonic Counter (the adaptive controller's "methods currently under
// discipline X" is the canonical user). Like Counter, the zero value is
// ready and a nil *Gauge ignores updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current level.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the level by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Load returns the current level (0 for nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. bucket 0 holds
// v==0, bucket i holds 2^(i-1) <= v < 2^i.
const histBuckets = 64

// Histogram is a lock-free power-of-two histogram for latencies
// (microseconds) and sizes (bytes). Like Counter, a nil *Histogram
// ignores observations.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Snapshot captures the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[int]int64)
			}
			s.Buckets[i] = n
		}
	}
	return s
}

// Registry holds named counters and histograms. Lookups get-or-create;
// hot paths should resolve metrics once (see the bundles in names.go)
// and then touch only atomics.
type Registry struct {
	mu        sync.RWMutex
	counters  map[string]*Counter
	histogram map[string]*Histogram
	gauges    map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		histogram: make(map[string]*Histogram),
		gauges:    make(map[string]*Gauge),
	}
}

// defaultRegistry is the process-wide registry used when no explicit
// one is configured (long-running binaries expose it via the debug
// endpoint; the bench harness diffs it per run).
var defaultRegistry = NewRegistry()

// Default returns the process-wide shared registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histogram[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histogram[name]; h == nil {
		h = &Histogram{}
		r.histogram[name] = h
	}
	return h
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot captures every registered metric. The result is detached:
// later updates do not change it.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histogram)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, h := range r.histogram {
		s.Histograms[name] = h.Snapshot()
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Load()
		}
	}
	return s
}

// Names returns the sorted counter names currently registered (mostly
// for the debug endpoint and tests).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.histogram)+len(r.gauges))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.histogram {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
