package msg

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Argument and result streams travel as gob-encoded []any, so a generic
// client can decode a reply without knowing the remote method's
// signature. Gob transmits interface values with their concrete type
// names, which must be registered: common types are registered here,
// and applications register their own with RegisterType (the public
// phoenix.RegisterType forwards to it), exactly as encoding/gob users
// register types exchanged through interfaces.

func init() {
	for _, v := range []any{
		int(0), int8(0), int16(0), int32(0), int64(0),
		uint(0), uint8(0), uint16(0), uint32(0), uint64(0),
		float32(0), float64(0), string(""), bool(false),
		[]byte(nil), []string(nil), []int(nil), []int64(nil), []float64(nil),
		map[string]string(nil), map[string]int(nil), map[string]float64(nil),
		[]any(nil), map[string]any(nil),
	} {
		gob.Register(v)
	}
}

// RegisterType makes a concrete type transmissible as a method argument
// or result. Call it once (e.g. from an init function) for every
// application struct that crosses a component boundary.
func RegisterType(v any) { gob.Register(v) }

// EncodeAnySlice serializes an argument or result list.
func EncodeAnySlice(vals []any) ([]byte, error) {
	var buf bytes.Buffer
	if vals == nil {
		vals = []any{}
	}
	for i, v := range vals {
		if v == nil {
			return nil, fmt.Errorf("msg: value %d is untyped nil; pass a typed zero value", i)
		}
	}
	if err := gob.NewEncoder(&buf).Encode(vals); err != nil {
		return nil, fmt.Errorf("msg: encode values: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeAnySlice deserializes an argument or result list.
func DecodeAnySlice(data []byte) ([]any, error) {
	var vals []any
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&vals); err != nil {
		return nil, fmt.Errorf("msg: decode values: %w", err)
	}
	return vals, nil
}
