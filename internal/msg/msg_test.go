package msg

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

func TestComponentTypeString(t *testing.T) {
	cases := map[ComponentType]string{
		External:          "External",
		Persistent:        "Persistent",
		Subordinate:       "Subordinate",
		Functional:        "Functional",
		ReadOnly:          "ReadOnly",
		ComponentType(99): "ComponentType(99)",
	}
	for ct, want := range cases {
		if got := ct.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ct, got, want)
		}
	}
}

func TestStateless(t *testing.T) {
	if !Functional.Stateless() || !ReadOnly.Stateless() {
		t.Error("functional and read-only are stateless")
	}
	if Persistent.Stateless() || Subordinate.Stateless() || External.Stateless() {
		t.Error("persistent/subordinate/external are not stateless")
	}
}

func TestCallRoundTrip(t *testing.T) {
	c := &Call{
		ID: ids.CallID{
			Caller: ids.ComponentAddr{Machine: "evo1", Proc: 2, Comp: 3},
			Seq:    17,
		},
		Target:      ids.MakeURI("evo2", "shop", "Store"),
		Method:      "Search",
		Args:        []byte{1, 2, 3},
		NumArgs:     1,
		CallerType:  Persistent,
		CallerURI:   ids.MakeURI("evo1", "buyer", "Buyer"),
		ReadOnly:    true,
		KnowsServer: true,
	}
	data, err := EncodeCall(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCall(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, c)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	r := &Reply{
		ID:             ids.CallID{Caller: ids.ComponentAddr{Machine: "m", Proc: 1, Comp: 1}, Seq: 5},
		Results:        []byte{9, 8},
		NumResults:     2,
		AppErr:         "boom",
		HasAttachment:  true,
		ServerType:     ReadOnly,
		MethodReadOnly: true,
	}
	data, err := EncodeReply(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReply(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := DecodeCall([]byte("not gob")); err == nil {
		t.Error("DecodeCall accepted garbage")
	}
	if _, err := DecodeReply([]byte{0xde, 0xad}); err == nil {
		t.Error("DecodeReply accepted garbage")
	}
}

type basket struct {
	Items []string
	Total float64
}

func TestEncodeDecodeValues(t *testing.T) {
	vals := []reflect.Value{
		reflect.ValueOf("recovery"),
		reflect.ValueOf(42),
		reflect.ValueOf(basket{Items: []string{"a", "b"}, Total: 9.5}),
		reflect.ValueOf([]int{1, 2, 3}),
		reflect.ValueOf(map[string]int{"x": 1}),
	}
	data, err := EncodeValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	types := []reflect.Type{
		reflect.TypeOf(""),
		reflect.TypeOf(0),
		reflect.TypeOf(basket{}),
		reflect.TypeOf([]int(nil)),
		reflect.TypeOf(map[string]int(nil)),
	}
	got, err := DecodeValues(data, types)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if !reflect.DeepEqual(got[i].Interface(), vals[i].Interface()) {
			t.Errorf("value %d: got %v, want %v", i, got[i], vals[i])
		}
	}
}

func TestEncodeValuesEmpty(t *testing.T) {
	data, err := EncodeValues(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeValues(data, nil)
	if err != nil || len(got) != 0 {
		t.Errorf("empty round trip: %v %v", got, err)
	}
}

func TestDecodeValuesWrongType(t *testing.T) {
	data, err := EncodeValues([]reflect.Value{reflect.ValueOf("text")})
	if err != nil {
		t.Fatal(err)
	}
	// Decoding a string into a struct must fail, not panic.
	if _, err := DecodeValues(data, []reflect.Type{reflect.TypeOf(basket{})}); err == nil {
		t.Error("decoding string into struct succeeded")
	}
}

func TestDecodeValuesTruncated(t *testing.T) {
	data, err := EncodeValues([]reflect.Value{reflect.ValueOf(1), reflect.ValueOf(2)})
	if err != nil {
		t.Fatal(err)
	}
	types := []reflect.Type{reflect.TypeOf(0), reflect.TypeOf(0), reflect.TypeOf(0)}
	if _, err := DecodeValues(data, types); err == nil {
		t.Error("decoding 3 values from a 2-value stream succeeded")
	} else if !strings.Contains(err.Error(), "value 2") {
		t.Errorf("error should name the failing value: %v", err)
	}
}

// Property: string/int/float tuples always round-trip exactly.
func TestValuesRoundTripProperty(t *testing.T) {
	f := func(s string, i int64, fl float64, b bool) bool {
		vals := []reflect.Value{
			reflect.ValueOf(s), reflect.ValueOf(i),
			reflect.ValueOf(fl), reflect.ValueOf(b),
		}
		data, err := EncodeValues(vals)
		if err != nil {
			return false
		}
		got, err := DecodeValues(data, []reflect.Type{
			reflect.TypeOf(""), reflect.TypeOf(int64(0)),
			reflect.TypeOf(float64(0)), reflect.TypeOf(false),
		})
		if err != nil {
			return false
		}
		return got[0].String() == s && got[1].Int() == i &&
			(got[2].Float() == fl || (fl != fl && got[2].Float() != got[2].Float())) &&
			got[3].Bool() == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
