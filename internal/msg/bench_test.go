package msg

import (
	"testing"

	"repro/internal/ids"
)

// benchCall is a representative Figure-1 message: a persistent client
// calling a persistent server with a realistic argument stream (the
// size EncodeAnySlice produces for a one-int argument list).
func benchCall() *Call {
	args, _ := EncodeAnySlice([]any{42})
	return &Call{
		ID: ids.CallID{
			Caller: ids.ComponentAddr{Machine: "evo1", Proc: 2, Comp: 3},
			Seq:    17,
		},
		Target:     ids.MakeURI("evo2", "shop", "Store"),
		Method:     "Search",
		Args:       args,
		NumArgs:    1,
		CallerType: Persistent,
		CallerURI:  ids.MakeURI("evo1", "buyer", "Buyer"),
	}
}

func benchReply() *Reply {
	results, _ := EncodeAnySlice([]any{42})
	return &Reply{
		ID: ids.CallID{
			Caller: ids.ComponentAddr{Machine: "evo1", Proc: 2, Comp: 3},
			Seq:    17,
		},
		Results:       results,
		NumResults:    1,
		HasAttachment: true,
		ServerType:    Persistent,
	}
}

func BenchmarkEncodeCall(b *testing.B) {
	c := benchCall()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := EncodeCall(c)
		if err != nil {
			b.Fatal(err)
		}
		FreeBuf(data)
	}
}

func BenchmarkDecodeCall(b *testing.B) {
	c := benchCall()
	data, err := EncodeCall(c)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeCall(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeReply(b *testing.B) {
	r := benchReply()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := EncodeReply(r)
		if err != nil {
			b.Fatal(err)
		}
		FreeBuf(data)
	}
}

func BenchmarkDecodeReply(b *testing.B) {
	r := benchReply()
	data, err := EncodeReply(r)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeReply(data); err != nil {
			b.Fatal(err)
		}
	}
}
