// Package msg defines the wire messages exchanged between Phoenix/App
// contexts: method-call messages and their replies (messages 1-4 of
// paper Figure 1 — an incoming call and its reply are the same wire
// message seen from the server and client side respectively).
//
// Messages carry the component-type attachments of Section 3.4: a
// client attaches its (parent) component type so the server can pick a
// logging discipline, and the server attaches its type in the reply so
// the client can populate its remote component type table. The
// attachment also implements the Section 5.2.3 optimization: the client
// sets KnowsServer once it has learned the server's type, letting the
// server omit the reply attachment.
package msg

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"

	"repro/internal/ids"
	"repro/internal/obs/trace"
)

// ComponentType enumerates the Phoenix/App component kinds of
// Sections 2 and 3.2. External is the default for components the
// runtime knows nothing about and makes no guarantees for.
type ComponentType uint8

const (
	// External components get no logging and no guarantees.
	External ComponentType = iota
	// Persistent components are transparently logged and recovered.
	Persistent
	// Subordinate components live in their parent's context and accept
	// calls only from the parent and sibling subordinates.
	Subordinate
	// Functional components are stateless and pure; they call only
	// other functional components.
	Functional
	// ReadOnly components are stateless but may read persistent
	// servers; their replies are not repeatable.
	ReadOnly
)

// String returns the paper's name for the component type.
func (t ComponentType) String() string {
	switch t {
	case External:
		return "External"
	case Persistent:
		return "Persistent"
	case Subordinate:
		return "Subordinate"
	case Functional:
		return "Functional"
	case ReadOnly:
		return "ReadOnly"
	default:
		return fmt.Sprintf("ComponentType(%d)", uint8(t))
	}
}

// Stateless reports whether the component type keeps no recoverable
// state (functional and read-only components, Section 3.2).
func (t ComponentType) Stateless() bool {
	return t == Functional || t == ReadOnly
}

// Call is a method-call message (message 1/3 of Figure 1).
type Call struct {
	// ID is the globally unique method-call ID (condition 2). It is
	// zero when the caller is an external component.
	ID ids.CallID
	// Target is the URI of the component being called.
	Target ids.URI
	// Method is the exported method name to invoke.
	Method string
	// Args is the gob stream of the NumArgs argument values.
	Args []byte
	// NumArgs is the number of encoded arguments.
	NumArgs int

	// CallerType is the Section 3.4 attachment: the type of the
	// calling component (the parent component of its context).
	CallerType ComponentType
	// CallerURI lets the server name the caller (diagnostics only).
	CallerURI ids.URI
	// ReadOnly marks the call as one the caller treats as read-only
	// (call to a read-only method, learned from the remote component
	// type table or declared by the proxy).
	ReadOnly bool
	// KnowsServer tells the server that the caller already knows the
	// server's component type, so the reply attachment may be omitted
	// (the Section 5.2.3 optimization).
	KnowsServer bool

	// Trace is the causal-trace identity of this call (zero when
	// tracing is off or the caller predates it). It rides the traced
	// envelope (0xC6), never the bare body, so untraced wire bytes are
	// unchanged.
	Trace trace.Ref
}

// Reply is a method-reply message (message 2/4 of Figure 1).
type Reply struct {
	// ID echoes the call's ID.
	ID ids.CallID
	// Results is the gob stream of the NumResults return values,
	// excluding a trailing error.
	Results []byte
	// NumResults is the number of encoded results.
	NumResults int
	// AppErr carries a non-nil error returned by the method itself
	// (an application error: the component is alive; condition 4's
	// retries do not apply).
	AppErr string
	// Fault carries a runtime infrastructure error (no such component,
	// no such method, undecodable arguments). Like AppErr it means the
	// server process is alive, so the client must not retry.
	Fault string

	// HasAttachment tells the client the three fields below are set;
	// it is false when the call's KnowsServer let the server omit them.
	HasAttachment bool
	// ServerType is the server's component type.
	ServerType ComponentType
	// MethodReadOnly reports that the invoked method carries the
	// read-only attribute (Section 3.3).
	MethodReadOnly bool

	// Trace echoes the call's causal-trace identity (zero when the
	// call was untraced); rides the traced envelope (0xC7) only.
	Trace trace.Ref
}

// EncodeCall serializes a Call for the transport: the binary envelope
// of codec.go, in a pooled buffer. The caller owns the returned slice
// until it calls FreeBuf (callers that cannot prove release just skip
// FreeBuf; see pool.go).
func EncodeCall(c *Call) ([]byte, error) {
	var buf []byte
	if c.Trace.IsZero() {
		buf = append(GetBuf(), verCall)
	} else {
		buf = append(GetBuf(), verCallTraced)
		buf = AppendUvarint(buf, c.Trace.Trace)
		buf = AppendUvarint(buf, c.Trace.Span)
	}
	buf = AppendCall(buf, c)
	codecMetrics.BytesOut.Add(int64(len(buf)))
	return buf, nil
}

// DecodeCall deserializes a Call from the transport. A 0xC1 first byte
// selects the binary envelope, 0xC6 the traced one; anything else is
// an old-format gob stream (gob streams cannot start with 0x80..0xF7)
// and falls back to the legacy decoder, so mixed-version peers and old
// logs keep working.
func DecodeCall(data []byte) (*Call, error) {
	codecMetrics.BytesIn.Add(int64(len(data)))
	if len(data) > 0 && (data[0] == verCall || data[0] == verCallTraced) {
		var c Call
		body := data[1:]
		if data[0] == verCallTraced {
			var err error
			if c.Trace.Trace, body, err = ConsumeUvarint(body); err != nil {
				return nil, fmt.Errorf("msg: decode call trace: %w", err)
			}
			if c.Trace.Span, body, err = ConsumeUvarint(body); err != nil {
				return nil, fmt.Errorf("msg: decode call trace: %w", err)
			}
		}
		rest, err := ConsumeCall(body, &c)
		if err != nil {
			return nil, fmt.Errorf("msg: decode call: %w", err)
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("msg: decode call: %d trailing bytes", len(rest))
		}
		return &c, nil
	}
	codecMetrics.LegacyDecodes.Inc()
	return decodeCallGob(data)
}

// EncodeReply serializes a Reply for the transport. Unlike EncodeCall
// the result is NOT pooled: replies cross goroutines asynchronously
// (transport delivery, the last-call reply table), so no call site can
// prove release.
func EncodeReply(r *Reply) ([]byte, error) {
	buf := make([]byte, 0, 64+len(r.Results))
	if r.Trace.IsZero() {
		buf = append(buf, verReply)
	} else {
		buf = append(buf, verReplyTraced)
		buf = AppendUvarint(buf, r.Trace.Trace)
		buf = AppendUvarint(buf, r.Trace.Span)
	}
	buf = AppendReply(buf, r)
	codecMetrics.BytesOut.Add(int64(len(buf)))
	return buf, nil
}

// DecodeReply deserializes a Reply from the transport, with the same
// traced-envelope dispatch and gob fallback as DecodeCall.
func DecodeReply(data []byte) (*Reply, error) {
	codecMetrics.BytesIn.Add(int64(len(data)))
	if len(data) > 0 && (data[0] == verReply || data[0] == verReplyTraced) {
		var r Reply
		body := data[1:]
		if data[0] == verReplyTraced {
			var err error
			if r.Trace.Trace, body, err = ConsumeUvarint(body); err != nil {
				return nil, fmt.Errorf("msg: decode reply trace: %w", err)
			}
			if r.Trace.Span, body, err = ConsumeUvarint(body); err != nil {
				return nil, fmt.Errorf("msg: decode reply trace: %w", err)
			}
		}
		rest, err := ConsumeReply(body, &r)
		if err != nil {
			return nil, fmt.Errorf("msg: decode reply: %w", err)
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("msg: decode reply: %d trailing bytes", len(rest))
		}
		return &r, nil
	}
	codecMetrics.LegacyDecodes.Inc()
	return decodeReplyGob(data)
}

// encodeCallGob is the pre-binary-codec envelope encoder. It survives
// for the fallback parity tests and for writing legacy-format fixtures.
func encodeCallGob(c *Call) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		return nil, fmt.Errorf("msg: encode call: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeCallGob(data []byte) (*Call, error) {
	var c Call
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&c); err != nil {
		return nil, fmt.Errorf("msg: decode call: %w", err)
	}
	return &c, nil
}

func encodeReplyGob(r *Reply) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, fmt.Errorf("msg: encode reply: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeReplyGob(data []byte) (*Reply, error) {
	var r Reply
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&r); err != nil {
		return nil, fmt.Errorf("msg: decode reply: %w", err)
	}
	return &r, nil
}

// EncodeValues gob-encodes a sequence of values (method arguments or
// results) into one stream. Marshalling happens even for in-process
// calls, exactly as .NET remoting marshals across context boundaries:
// it isolates component state and makes the logged bytes identical to
// the delivered bytes, which replay determinism relies on.
func EncodeValues(vals []reflect.Value) ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for i, v := range vals {
		if err := enc.EncodeValue(v); err != nil {
			return nil, fmt.Errorf("msg: encode value %d (%s): %w", i, v.Type(), err)
		}
	}
	return buf.Bytes(), nil
}

// DecodeValues decodes n values of the given types from a stream
// produced by EncodeValues.
func DecodeValues(data []byte, types []reflect.Type) ([]reflect.Value, error) {
	dec := gob.NewDecoder(bytes.NewReader(data))
	vals := make([]reflect.Value, len(types))
	for i, t := range types {
		p := reflect.New(t)
		if err := dec.DecodeValue(p); err != nil {
			return nil, fmt.Errorf("msg: decode value %d (%s): %w", i, t, err)
		}
		vals[i] = p.Elem()
	}
	return vals, nil
}
