// Package msg defines the wire messages exchanged between Phoenix/App
// contexts: method-call messages and their replies (messages 1-4 of
// paper Figure 1 — an incoming call and its reply are the same wire
// message seen from the server and client side respectively).
//
// Messages carry the component-type attachments of Section 3.4: a
// client attaches its (parent) component type so the server can pick a
// logging discipline, and the server attaches its type in the reply so
// the client can populate its remote component type table. The
// attachment also implements the Section 5.2.3 optimization: the client
// sets KnowsServer once it has learned the server's type, letting the
// server omit the reply attachment.
package msg

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"

	"repro/internal/ids"
)

// ComponentType enumerates the Phoenix/App component kinds of
// Sections 2 and 3.2. External is the default for components the
// runtime knows nothing about and makes no guarantees for.
type ComponentType uint8

const (
	// External components get no logging and no guarantees.
	External ComponentType = iota
	// Persistent components are transparently logged and recovered.
	Persistent
	// Subordinate components live in their parent's context and accept
	// calls only from the parent and sibling subordinates.
	Subordinate
	// Functional components are stateless and pure; they call only
	// other functional components.
	Functional
	// ReadOnly components are stateless but may read persistent
	// servers; their replies are not repeatable.
	ReadOnly
)

// String returns the paper's name for the component type.
func (t ComponentType) String() string {
	switch t {
	case External:
		return "External"
	case Persistent:
		return "Persistent"
	case Subordinate:
		return "Subordinate"
	case Functional:
		return "Functional"
	case ReadOnly:
		return "ReadOnly"
	default:
		return fmt.Sprintf("ComponentType(%d)", uint8(t))
	}
}

// Stateless reports whether the component type keeps no recoverable
// state (functional and read-only components, Section 3.2).
func (t ComponentType) Stateless() bool {
	return t == Functional || t == ReadOnly
}

// Call is a method-call message (message 1/3 of Figure 1).
type Call struct {
	// ID is the globally unique method-call ID (condition 2). It is
	// zero when the caller is an external component.
	ID ids.CallID
	// Target is the URI of the component being called.
	Target ids.URI
	// Method is the exported method name to invoke.
	Method string
	// Args is the gob stream of the NumArgs argument values.
	Args []byte
	// NumArgs is the number of encoded arguments.
	NumArgs int

	// CallerType is the Section 3.4 attachment: the type of the
	// calling component (the parent component of its context).
	CallerType ComponentType
	// CallerURI lets the server name the caller (diagnostics only).
	CallerURI ids.URI
	// ReadOnly marks the call as one the caller treats as read-only
	// (call to a read-only method, learned from the remote component
	// type table or declared by the proxy).
	ReadOnly bool
	// KnowsServer tells the server that the caller already knows the
	// server's component type, so the reply attachment may be omitted
	// (the Section 5.2.3 optimization).
	KnowsServer bool
}

// Reply is a method-reply message (message 2/4 of Figure 1).
type Reply struct {
	// ID echoes the call's ID.
	ID ids.CallID
	// Results is the gob stream of the NumResults return values,
	// excluding a trailing error.
	Results []byte
	// NumResults is the number of encoded results.
	NumResults int
	// AppErr carries a non-nil error returned by the method itself
	// (an application error: the component is alive; condition 4's
	// retries do not apply).
	AppErr string
	// Fault carries a runtime infrastructure error (no such component,
	// no such method, undecodable arguments). Like AppErr it means the
	// server process is alive, so the client must not retry.
	Fault string

	// HasAttachment tells the client the three fields below are set;
	// it is false when the call's KnowsServer let the server omit them.
	HasAttachment bool
	// ServerType is the server's component type.
	ServerType ComponentType
	// MethodReadOnly reports that the invoked method carries the
	// read-only attribute (Section 3.3).
	MethodReadOnly bool
}

// EncodeCall serializes a Call for the transport.
func EncodeCall(c *Call) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		return nil, fmt.Errorf("msg: encode call: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeCall deserializes a Call from the transport.
func DecodeCall(data []byte) (*Call, error) {
	var c Call
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&c); err != nil {
		return nil, fmt.Errorf("msg: decode call: %w", err)
	}
	return &c, nil
}

// EncodeReply serializes a Reply for the transport.
func EncodeReply(r *Reply) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, fmt.Errorf("msg: encode reply: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeReply deserializes a Reply from the transport.
func DecodeReply(data []byte) (*Reply, error) {
	var r Reply
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&r); err != nil {
		return nil, fmt.Errorf("msg: decode reply: %w", err)
	}
	return &r, nil
}

// EncodeValues gob-encodes a sequence of values (method arguments or
// results) into one stream. Marshalling happens even for in-process
// calls, exactly as .NET remoting marshals across context boundaries:
// it isolates component state and makes the logged bytes identical to
// the delivered bytes, which replay determinism relies on.
func EncodeValues(vals []reflect.Value) ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for i, v := range vals {
		if err := enc.EncodeValue(v); err != nil {
			return nil, fmt.Errorf("msg: encode value %d (%s): %w", i, v.Type(), err)
		}
	}
	return buf.Bytes(), nil
}

// DecodeValues decodes n values of the given types from a stream
// produced by EncodeValues.
func DecodeValues(data []byte, types []reflect.Type) ([]reflect.Value, error) {
	dec := gob.NewDecoder(bytes.NewReader(data))
	vals := make([]reflect.Value, len(types))
	for i, t := range types {
		p := reflect.New(t)
		if err := dec.DecodeValue(p); err != nil {
			return nil, fmt.Errorf("msg: decode value %d (%s): %w", i, t, err)
		}
		vals[i] = p.Elem()
	}
	return vals, nil
}
