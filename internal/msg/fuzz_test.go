package msg

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/obs/trace"
)

// FuzzDecodeCall: arbitrary bytes must never panic the call decoder,
// and valid encodings must round-trip.
func FuzzDecodeCall(f *testing.F) {
	seed, _ := EncodeCall(&Call{
		ID:     ids.CallID{Caller: ids.ComponentAddr{Machine: "m", Proc: 1, Comp: 2}, Seq: 3},
		Target: "phoenix://m/p/c", Method: "M", Args: []byte{1, 2}, NumArgs: 1,
	})
	f.Add(seed)
	tracedSeed, _ := EncodeCall(&Call{
		ID:     ids.CallID{Caller: ids.ComponentAddr{Machine: "m", Proc: 1, Comp: 2}, Seq: 4},
		Target: "phoenix://m/p/c", Method: "M", Args: []byte{1, 2}, NumArgs: 1,
		Trace:  trace.Ref{Trace: 0xBEEF0001, Span: 2},
	})
	f.Add(tracedSeed)
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCall(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode.
		if _, err := EncodeCall(c); err != nil {
			t.Fatalf("re-encode of decoded call failed: %v", err)
		}
	})
}

// FuzzDecodeReply mirrors FuzzDecodeCall for replies.
func FuzzDecodeReply(f *testing.F) {
	seed, _ := EncodeReply(&Reply{Results: []byte{9}, NumResults: 1, AppErr: "x"})
	f.Add(seed)
	tracedSeed, _ := EncodeReply(&Reply{Results: []byte{9}, NumResults: 1,
		Trace: trace.Ref{Trace: 0xBEEF0001, Span: 3}})
	f.Add(tracedSeed)
	f.Add([]byte{0xff, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeReply(data)
		if err != nil {
			return
		}
		if _, err := EncodeReply(r); err != nil {
			t.Fatalf("re-encode of decoded reply failed: %v", err)
		}
	})
}

// FuzzDecodeAnySlice: the argument stream decoder must be total.
func FuzzDecodeAnySlice(f *testing.F) {
	seed, _ := EncodeAnySlice([]any{1, "two", 3.0, true})
	f.Add(seed)
	f.Add([]byte("x"))
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := DecodeAnySlice(data)
		if err != nil {
			return
		}
		for _, v := range vals {
			if v == nil {
				t.Fatal("decoder produced a nil value")
			}
		}
	})
}
