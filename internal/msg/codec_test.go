package msg

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/ids"
)

var codecCalls = []Call{
	{},
	{
		ID:     ids.CallID{Caller: ids.ComponentAddr{Machine: "evo1", Proc: 7, Comp: 42}, Seq: 1 << 40},
		Target: "phoenix://evo2/srv/Server", Method: "Add",
		Args: []byte{0x03, 0x04, 0x00, 0x0e}, NumArgs: 2,
		CallerType: Persistent, CallerURI: "phoenix://evo1/cli/Batcher",
		ReadOnly: true, KnowsServer: true,
	},
	{
		ID:     ids.CallID{Seq: 0xffffffffffffffff},
		Method: string(make([]byte, 300)), // multi-byte varint length
		Args:   make([]byte, 1000),
	},
}

var codecReplies = []Reply{
	{},
	{
		ID:      ids.CallID{Caller: ids.ComponentAddr{Machine: "evo2", Proc: 3, Comp: 9}, Seq: 77},
		Results: []byte{9, 9, 9}, NumResults: 1,
		AppErr: "boom", Fault: "no such method",
		HasAttachment: true, ServerType: ReadOnly, MethodReadOnly: true,
	},
}

// TestCallCodecGobParity: the binary envelope and the legacy gob
// envelope must decode to identical structs, and DecodeCall must
// accept both formats (the version-byte fallback that keeps old logs
// and mixed-version peers working).
func TestCallCodecGobParity(t *testing.T) {
	for i, want := range codecCalls {
		bin, err := EncodeCall(&want)
		if err != nil {
			t.Fatalf("call %d: encode: %v", i, err)
		}
		if bin[0] != verCall {
			t.Fatalf("call %d: version byte %#x, want %#x", i, bin[0], verCall)
		}
		legacy, err := encodeCallGob(&want)
		if err != nil {
			t.Fatalf("call %d: gob encode: %v", i, err)
		}
		if legacy[0] >= 0x80 && legacy[0] <= 0xf7 {
			t.Fatalf("call %d: gob stream starts with %#x, collides with version-byte space", i, legacy[0])
		}
		fromBin, err := DecodeCall(bin)
		if err != nil {
			t.Fatalf("call %d: decode binary: %v", i, err)
		}
		fromGob, err := DecodeCall(legacy)
		if err != nil {
			t.Fatalf("call %d: decode legacy: %v", i, err)
		}
		if !reflect.DeepEqual(fromBin, fromGob) {
			t.Errorf("call %d: binary and legacy decodes differ:\n  bin %+v\n  gob %+v", i, fromBin, fromGob)
		}
		if !callEqual(fromBin, &want) {
			t.Errorf("call %d: round trip mismatch:\n  got  %+v\n  want %+v", i, fromBin, want)
		}
		FreeBuf(bin)
	}
}

func TestReplyCodecGobParity(t *testing.T) {
	for i, want := range codecReplies {
		bin, err := EncodeReply(&want)
		if err != nil {
			t.Fatalf("reply %d: encode: %v", i, err)
		}
		if bin[0] != verReply {
			t.Fatalf("reply %d: version byte %#x, want %#x", i, bin[0], verReply)
		}
		legacy, err := encodeReplyGob(&want)
		if err != nil {
			t.Fatalf("reply %d: gob encode: %v", i, err)
		}
		fromBin, err := DecodeReply(bin)
		if err != nil {
			t.Fatalf("reply %d: decode binary: %v", i, err)
		}
		fromGob, err := DecodeReply(legacy)
		if err != nil {
			t.Fatalf("reply %d: decode legacy: %v", i, err)
		}
		if !reflect.DeepEqual(fromBin, fromGob) {
			t.Errorf("reply %d: binary and legacy decodes differ:\n  bin %+v\n  gob %+v", i, fromBin, fromGob)
		}
		if !replyEqual(fromBin, &want) {
			t.Errorf("reply %d: round trip mismatch:\n  got  %+v\n  want %+v", i, fromBin, want)
		}
	}
}

// callEqual compares treating nil and empty byte slices as equal (gob
// and the binary codec both collapse the distinction).
func callEqual(a, b *Call) bool {
	return a.ID == b.ID && a.Target == b.Target && a.Method == b.Method &&
		bytes.Equal(a.Args, b.Args) && a.NumArgs == b.NumArgs &&
		a.CallerType == b.CallerType && a.CallerURI == b.CallerURI &&
		a.ReadOnly == b.ReadOnly && a.KnowsServer == b.KnowsServer
}

func replyEqual(a, b *Reply) bool {
	return a.ID == b.ID && bytes.Equal(a.Results, b.Results) &&
		a.NumResults == b.NumResults && a.AppErr == b.AppErr && a.Fault == b.Fault &&
		a.HasAttachment == b.HasAttachment && a.ServerType == b.ServerType &&
		a.MethodReadOnly == b.MethodReadOnly
}

// TestDecodeNoAlias: decoded byte fields must be copies — transport
// reads and WAL cursors reuse their buffers after decode returns.
func TestDecodeNoAlias(t *testing.T) {
	orig := &Call{Args: []byte{1, 2, 3}, NumArgs: 1, Method: "M"}
	data, err := EncodeCall(orig)
	if err != nil {
		t.Fatal(err)
	}
	c, err := DecodeCall(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		data[i] = 0xee
	}
	if !bytes.Equal(c.Args, []byte{1, 2, 3}) || c.Method != "M" {
		t.Fatalf("decoded call aliases the input buffer: %+v", c)
	}
}

// TestDecodeTruncated: every strict prefix of a valid envelope must
// error cleanly, never panic or succeed.
func TestDecodeTruncated(t *testing.T) {
	full, err := EncodeCall(&codecCalls[1])
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n < len(full); n++ {
		if _, err := DecodeCall(full[:n]); err == nil {
			t.Fatalf("decode of %d/%d-byte prefix succeeded", n, len(full))
		}
	}
	fullR, err := EncodeReply(&codecReplies[1])
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n < len(fullR); n++ {
		if _, err := DecodeReply(fullR[:n]); err == nil {
			t.Fatalf("reply decode of %d/%d-byte prefix succeeded", n, len(fullR))
		}
	}
}

// TestDecodeTrailing: bytes after a complete envelope are corruption,
// not padding.
func TestDecodeTrailing(t *testing.T) {
	data, err := EncodeCall(&codecCalls[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCall(append(data, 0x00)); err == nil {
		t.Fatal("decode with trailing byte succeeded")
	}
}

// FuzzCallCodecParity builds a Call from fuzzed fields and checks the
// binary round trip preserves exactly what a gob round trip preserves.
func FuzzCallCodecParity(f *testing.F) {
	f.Add("m", uint32(1), uint32(2), uint64(3), "t", "M", []byte{1}, 1, byte(1), "u", true, false)
	f.Add("", uint32(0), uint32(0), uint64(0), "", "", []byte(nil), 0, byte(0), "", false, false)
	f.Fuzz(func(t *testing.T, machine string, proc, comp uint32, seq uint64,
		target, method string, args []byte, numArgs int, ctype byte, uri string, ro, ks bool) {
		in := &Call{
			ID:     ids.CallID{Caller: ids.ComponentAddr{Machine: machine, Proc: ids.ProcID(proc), Comp: ids.CompID(comp)}, Seq: seq},
			Target: ids.URI(target), Method: method, Args: args, NumArgs: numArgs,
			CallerType: ComponentType(ctype), CallerURI: ids.URI(uri),
			ReadOnly: ro, KnowsServer: ks,
		}
		if numArgs < 0 {
			return // int field is uvarint on the wire; negative counts never occur
		}
		bin, err := EncodeCall(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeCall(bin)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !callEqual(got, in) {
			t.Fatalf("round trip mismatch:\n  got  %+v\n  want %+v", got, in)
		}
	})
}

func FuzzReplyCodecParity(f *testing.F) {
	f.Add("m", uint64(3), []byte{1}, 1, "e", "f", true, byte(1), false)
	f.Fuzz(func(t *testing.T, machine string, seq uint64, results []byte,
		numResults int, appErr, fault string, att bool, stype byte, mro bool) {
		if numResults < 0 {
			return
		}
		in := &Reply{
			ID:      ids.CallID{Caller: ids.ComponentAddr{Machine: machine}, Seq: seq},
			Results: results, NumResults: numResults, AppErr: appErr, Fault: fault,
			HasAttachment: att, ServerType: ComponentType(stype), MethodReadOnly: mro,
		}
		bin, err := EncodeReply(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeReply(bin)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !replyEqual(got, in) {
			t.Fatalf("round trip mismatch:\n  got  %+v\n  want %+v", got, in)
		}
	})
}
