package msg

import "repro/internal/ids"

// AppendCall appends the bare binary body of c (no version byte) to
// dst and returns the extended slice. Core's log records use it to
// embed calls inside their own framed payloads.
func AppendCall(dst []byte, c *Call) []byte {
	dst = AppendString(dst, c.ID.Caller.Machine)
	dst = AppendUvarint(dst, uint64(c.ID.Caller.Proc))
	dst = AppendUvarint(dst, uint64(c.ID.Caller.Comp))
	dst = AppendUvarint(dst, c.ID.Seq)
	dst = AppendString(dst, string(c.Target))
	dst = AppendString(dst, c.Method)
	dst = AppendBytes(dst, c.Args)
	dst = AppendUvarint(dst, uint64(c.NumArgs))
	dst = append(dst, byte(c.CallerType))
	dst = AppendString(dst, string(c.CallerURI))
	var flags byte
	if c.ReadOnly {
		flags |= 1
	}
	if c.KnowsServer {
		flags |= 2
	}
	return append(dst, flags)
}

// ConsumeCall decodes a bare Call body from data into c and returns
// the unconsumed tail. All byte and string fields are copies; c never
// aliases data.
func ConsumeCall(data []byte, c *Call) ([]byte, error) {
	var err error
	var u uint64
	if c.ID.Caller.Machine, data, err = ConsumeString(data); err != nil {
		return nil, err
	}
	if u, data, err = ConsumeUvarint(data); err != nil {
		return nil, err
	}
	c.ID.Caller.Proc = ids.ProcID(u)
	if u, data, err = ConsumeUvarint(data); err != nil {
		return nil, err
	}
	c.ID.Caller.Comp = ids.CompID(u)
	if c.ID.Seq, data, err = ConsumeUvarint(data); err != nil {
		return nil, err
	}
	var s string
	if s, data, err = ConsumeString(data); err != nil {
		return nil, err
	}
	c.Target = ids.URI(s)
	if c.Method, data, err = ConsumeString(data); err != nil {
		return nil, err
	}
	if c.Args, data, err = ConsumeBytes(data); err != nil {
		return nil, err
	}
	if u, data, err = ConsumeUvarint(data); err != nil {
		return nil, err
	}
	c.NumArgs = int(u)
	var b byte
	if b, data, err = ConsumeByte(data); err != nil {
		return nil, err
	}
	c.CallerType = ComponentType(b)
	if s, data, err = ConsumeString(data); err != nil {
		return nil, err
	}
	c.CallerURI = ids.URI(s)
	if b, data, err = ConsumeByte(data); err != nil {
		return nil, err
	}
	c.ReadOnly = b&1 != 0
	c.KnowsServer = b&2 != 0
	return data, nil
}

// AppendReply appends the bare binary body of r (no version byte) to
// dst and returns the extended slice.
func AppendReply(dst []byte, r *Reply) []byte {
	dst = AppendString(dst, r.ID.Caller.Machine)
	dst = AppendUvarint(dst, uint64(r.ID.Caller.Proc))
	dst = AppendUvarint(dst, uint64(r.ID.Caller.Comp))
	dst = AppendUvarint(dst, r.ID.Seq)
	dst = AppendBytes(dst, r.Results)
	dst = AppendUvarint(dst, uint64(r.NumResults))
	dst = AppendString(dst, r.AppErr)
	dst = AppendString(dst, r.Fault)
	var flags byte
	if r.HasAttachment {
		flags |= 1
	}
	if r.MethodReadOnly {
		flags |= 2
	}
	dst = append(dst, flags)
	return append(dst, byte(r.ServerType))
}

// ConsumeReply decodes a bare Reply body from data into r and returns
// the unconsumed tail. All byte and string fields are copies; r never
// aliases data.
func ConsumeReply(data []byte, r *Reply) ([]byte, error) {
	var err error
	var u uint64
	if r.ID.Caller.Machine, data, err = ConsumeString(data); err != nil {
		return nil, err
	}
	if u, data, err = ConsumeUvarint(data); err != nil {
		return nil, err
	}
	r.ID.Caller.Proc = ids.ProcID(u)
	if u, data, err = ConsumeUvarint(data); err != nil {
		return nil, err
	}
	r.ID.Caller.Comp = ids.CompID(u)
	if r.ID.Seq, data, err = ConsumeUvarint(data); err != nil {
		return nil, err
	}
	if r.Results, data, err = ConsumeBytes(data); err != nil {
		return nil, err
	}
	if u, data, err = ConsumeUvarint(data); err != nil {
		return nil, err
	}
	r.NumResults = int(u)
	if r.AppErr, data, err = ConsumeString(data); err != nil {
		return nil, err
	}
	if r.Fault, data, err = ConsumeString(data); err != nil {
		return nil, err
	}
	var b byte
	if b, data, err = ConsumeByte(data); err != nil {
		return nil, err
	}
	r.HasAttachment = b&1 != 0
	r.MethodReadOnly = b&2 != 0
	if b, data, err = ConsumeByte(data); err != nil {
		return nil, err
	}
	r.ServerType = ComponentType(b)
	return data, nil
}
