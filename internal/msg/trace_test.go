package msg

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

func tracedCall() *Call {
	return &Call{
		ID: ids.CallID{
			Caller: ids.ComponentAddr{Machine: "evo1", Proc: 2, Comp: 3},
			Seq:    17,
		},
		Target:      ids.MakeURI("evo2", "shop", "Store"),
		Method:      "Search",
		Args:        []byte{1, 2, 3},
		NumArgs:     1,
		CallerType:  Persistent,
		CallerURI:   ids.MakeURI("evo1", "buyer", "Buyer"),
		ReadOnly:    true,
		KnowsServer: true,
		Trace:       trace.Ref{Trace: 0xABCD0001, Span: 7},
	}
}

func TestTracedCallRoundTrip(t *testing.T) {
	c := tracedCall()
	data, err := EncodeCall(c)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != verCallTraced {
		t.Fatalf("traced call framed as %#x, want %#x", data[0], verCallTraced)
	}
	got, err := DecodeCall(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, c)
	}
}

func TestTracedReplyRoundTrip(t *testing.T) {
	r := &Reply{
		ID:             ids.CallID{Caller: ids.ComponentAddr{Machine: "m", Proc: 1, Comp: 1}, Seq: 5},
		Results:        []byte{9, 8},
		NumResults:     2,
		HasAttachment:  true,
		ServerType:     ReadOnly,
		MethodReadOnly: true,
		Trace:          trace.Ref{Trace: 0xABCD0001, Span: 9},
	}
	data, err := EncodeReply(r)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != verReplyTraced {
		t.Fatalf("traced reply framed as %#x, want %#x", data[0], verReplyTraced)
	}
	got, err := DecodeReply(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

// TestUntracedEnvelopeUnchanged pins the compatibility contract: a
// zero Trace encodes to the PR-5 envelope bit-for-bit, and the traced
// envelope is exactly the legacy bytes behind a new header — old
// streams and traced streams differ only in the prefix.
func TestUntracedEnvelopeUnchanged(t *testing.T) {
	c := tracedCall()
	traced, err := EncodeCall(c)
	if err != nil {
		t.Fatal(err)
	}
	c.Trace = trace.Ref{}
	legacy, err := EncodeCall(c)
	if err != nil {
		t.Fatal(err)
	}
	if legacy[0] != verCall {
		t.Fatalf("untraced call framed as %#x, want %#x", legacy[0], verCall)
	}
	// Strip the traced header: version byte + two uvarints.
	body := traced[1:]
	var consumeErr error
	if _, body, consumeErr = ConsumeUvarint(body); consumeErr != nil {
		t.Fatal(consumeErr)
	}
	if _, body, consumeErr = ConsumeUvarint(body); consumeErr != nil {
		t.Fatal(consumeErr)
	}
	if !bytes.Equal(body, legacy[1:]) {
		t.Error("traced call body differs from the legacy body")
	}
}

func TestTracedEnvelopeTruncation(t *testing.T) {
	call, _ := EncodeCall(tracedCall())
	for cut := 0; cut < len(call); cut++ {
		if _, err := DecodeCall(call[:cut]); err == nil && cut > 0 {
			t.Errorf("truncated traced call (%d bytes) decoded", cut)
		}
	}
	reply, _ := EncodeReply(&Reply{Results: []byte{1}, NumResults: 1,
		Trace: trace.Ref{Trace: 1, Span: 2}})
	for cut := 1; cut < len(reply); cut++ {
		if _, err := DecodeReply(reply[:cut]); err == nil {
			t.Errorf("truncated traced reply (%d bytes) decoded", cut)
		}
	}
}

// TestEncodeReplyBypassesPool is the regression gate on the PR-5
// ownership contract: EncodeReply's result is retained after return
// (the last-call reply table, async transport delivery), so it must
// never come from the scratch pool. If a future optimization pass
// switches it to GetBuf, the pool counters move and this fails.
func TestEncodeReplyBypassesPool(t *testing.T) {
	before := obs.Default().Snapshot()
	r := &Reply{Results: bytes.Repeat([]byte{0xAB}, 512), NumResults: 1,
		Trace: trace.Ref{Trace: 3, Span: 4}}
	for i := 0; i < 50; i++ {
		if _, err := EncodeReply(r); err != nil {
			t.Fatal(err)
		}
		r.Trace = trace.Ref{} // both framings must stay pool-free
	}
	delta := obs.Default().Snapshot().Diff(before)
	if hits, misses := delta.Counter(obs.CodecPoolHits), delta.Counter(obs.CodecPoolMisses); hits+misses != 0 {
		t.Fatalf("EncodeReply touched the scratch pool (%d hits, %d misses); its result outlives the call and must be freshly allocated", hits, misses)
	}
}

// pooledEncodeReply is the forbidden optimization spelled out: encode
// a reply into a pooled scratch buffer. TestPooledReplyWouldCorrupt
// shows why EncodeReply must not do this.
func pooledEncodeReply(r *Reply) []byte {
	buf := append(GetBuf(), verReply)
	return AppendReply(buf, r)
}

// TestPooledReplyWouldCorrupt demonstrates the failure mode the
// contract prevents: a retainer (the last-call reply table) keeps the
// encoded bytes, the pooled contract frees them, and the next encode
// scribbles over the retained view.
func TestPooledReplyWouldCorrupt(t *testing.T) {
	r := &Reply{Results: bytes.Repeat([]byte{0x5A}, 600), NumResults: 1}
	data := pooledEncodeReply(r)
	saved := append([]byte(nil), data...) // what the retainer expects to keep seeing
	FreeBuf(data)                         // the release a pooled contract would require

	// Churn the pool the way the call hot path does; any reuse of the
	// freed array rewrites the retained bytes in place.
	for i := 0; i < 100; i++ {
		other, err := EncodeCall(&Call{Method: "Clobber", Args: bytes.Repeat([]byte{0xFF}, 600), NumArgs: 1})
		if err != nil {
			t.Fatal(err)
		}
		corrupted := !bytes.Equal(data, saved)
		FreeBuf(other)
		if corrupted {
			return // hazard demonstrated: retained reply bytes changed under the reader
		}
	}
	t.Skip("pool never recycled the freed buffer in this run; hazard not observable")
}
