package msg

import (
	"sync"

	"repro/internal/obs"
)

// Scratch-buffer pool for the envelope codec. Encoding a Call or Reply
// happens once per message on every hot path of Figure 1 (client send,
// server reply, and the log records that embed them), so the codec
// draws its output buffers from a sync.Pool instead of allocating.
//
// Ownership rule (DESIGN.md Section 10): a buffer returned by
// EncodeCall/EncodeReply belongs to the caller until it calls FreeBuf,
// after which the buffer must not be touched. Callers that hand the
// bytes to a transport may FreeBuf as soon as the send returns, because
// transport handlers must not retain request buffers. Callers that
// cannot prove release (e.g. a reply cached in a table) simply never
// FreeBuf — the pool sees a miss later, never a corruption.

// minBufCap is the smallest capacity handed out; tiny messages share
// one size class so the pool stays hot across mixed workloads.
const minBufCap = 256

// maxPooledCap bounds what FreeBuf keeps: an occasional huge message
// must not pin megabytes inside the pool forever.
const maxPooledCap = 1 << 20

// The pool's New returns an empty holder (cap 0) rather than a fresh
// buffer, so GetBuf can tell a reuse from a miss and count each.
var bufPool = sync.Pool{
	New: func() any { return new([]byte) },
}

// codecMetrics is the package-wide codec accounting (obs.Default). The
// counters are nil-safe, so an unobserved process pays one predictable
// pointer check per event.
var codecMetrics = obs.CodecView(obs.Default())

// GetBuf returns a pooled scratch buffer of zero length. The codec's
// encoders call it internally; it is exported for callers that frame
// their own bytes (the WAL's encode-into path).
func GetBuf() []byte {
	p := bufPool.Get().(*[]byte)
	b := *p
	if cap(b) == 0 {
		codecMetrics.PoolMisses.Inc()
		b = make([]byte, 0, minBufCap)
	} else {
		codecMetrics.PoolHits.Inc()
	}
	return b[:0]
}

// FreeBuf returns a buffer obtained from GetBuf (or from one of the
// Encode functions) to the pool. Freeing nil or a foreign buffer is
// harmless; the buffer must not be used after the call.
func FreeBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledCap {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}
