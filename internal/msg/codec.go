// Binary envelope codec for Call and Reply.
//
// The gob envelope this replaces re-emits its type descriptors on every
// message (each message is a fresh gob stream, so nothing amortizes)
// and walks both structs reflectively; that cost shows up on all four
// Figure-1 message paths. The envelope fields are a fixed, closed set,
// so they are encoded by hand: varints for integers, length-prefixed
// raw bytes for strings and byte slices, one flag byte for the bools.
// Only the user argument/result values inside Args and Results remain
// gob (see EncodeValues) — their types are open.
//
// Format (DESIGN.md Section 10). All integers are unsigned varints
// (encoding/binary uvarint); "bytes" means uvarint length + raw bytes.
//
//	Call  = 0xC1 body;  Reply = 0xC2 body (version byte only at the
//	outermost envelope — embedded copies inside log records use the
//	bare body via AppendCall/ConsumeCall).
//
//	Traced Call  = 0xC6 TraceID SpanID body
//	Traced Reply = 0xC7 TraceID SpanID body
//
// The traced envelopes (PR 6) prepend the causal-trace identity as two
// uvarints before the unchanged bare body. Encoders emit them only for
// a nonzero Trace, so untraced output stays bit-for-bit identical to
// the 0xC1/0xC2 format and pre-trace peers keep decoding their own
// streams.
//
//	Call body:  Machine bytes, Proc, Comp, Seq, Target bytes,
//	            Method bytes, Args bytes, NumArgs, CallerType byte,
//	            CallerURI bytes, flags byte (bit0 ReadOnly,
//	            bit1 KnowsServer)
//	Reply body: Machine bytes, Proc, Comp, Seq, Results bytes,
//	            NumResults, AppErr bytes, Fault bytes, flags byte
//	            (bit0 HasAttachment, bit1 MethodReadOnly),
//	            ServerType byte
//
// The version bytes live in 0x80..0xF7, a range no gob stream can
// start with (gob streams open with a uvarint byte count: either a
// small literal < 0x80 or a negated length marker 0xF8..0xFF), so
// DecodeCall/DecodeReply fall back to gob on any other first byte and
// old peers and old logs keep decoding.
package msg

import "errors"

const (
	// verCall and verReply are the envelope version bytes. They must
	// stay within 0x80..0xF7 (see package comment) so gob fallback
	// detection stays sound. 0xC3 (hot log records), 0xC4 (traced log
	// records) and 0xC5 (serialized component state) are taken by
	// internal/core and internal/serial.
	verCall  = 0xC1
	verReply = 0xC2
	// verCallTraced and verReplyTraced frame envelopes that carry a
	// causal-trace identity (uvarint TraceID + SpanID before the bare
	// body). Same 0x80..0xF7 constraint.
	verCallTraced  = 0xC6
	verReplyTraced = 0xC7
)

// errShort reports a truncated or corrupt binary envelope.
var errShort = errors.New("msg: short binary envelope")

// AppendUvarint appends v as an unsigned varint. Hand-rolled rather
// than binary.AppendUvarint so the loop inlines into the appenders.
func AppendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// AppendBytes appends a uvarint length prefix followed by b.
func AppendBytes(dst []byte, b []byte) []byte {
	dst = AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendString appends a uvarint length prefix followed by s.
func AppendString(dst []byte, s string) []byte {
	dst = AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// ConsumeUvarint consumes a uvarint from data.
func ConsumeUvarint(data []byte) (uint64, []byte, error) {
	var v uint64
	for i := 0; i < len(data); i++ {
		b := data[i]
		if b < 0x80 {
			if i > 9 || (i == 9 && b > 1) {
				return 0, nil, errors.New("msg: varint overflows uint64")
			}
			return v | uint64(b)<<(7*i), data[i+1:], nil
		}
		v |= uint64(b&0x7f) << (7 * i)
	}
	return 0, nil, errShort
}

// ConsumeBytes consumes a length-prefixed byte field and returns a COPY.
// Decoded envelopes must not alias the input: transport reads and WAL
// cursors reuse their buffers, and core retains decoded records across
// replay (DESIGN.md Section 10 ownership rules).
func ConsumeBytes(data []byte) ([]byte, []byte, error) {
	n, rest, err := ConsumeUvarint(data)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, errShort
	}
	if n == 0 {
		return nil, rest, nil
	}
	out := make([]byte, n)
	copy(out, rest[:n])
	return out, rest[n:], nil
}

// ConsumeString consumes a length-prefixed string field (string(…) makes
// the copy).
func ConsumeString(data []byte) (string, []byte, error) {
	n, rest, err := ConsumeUvarint(data)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(rest)) {
		return "", nil, errShort
	}
	return string(rest[:n]), rest[n:], nil
}

// ConsumeByte consumes one raw byte.
func ConsumeByte(data []byte) (byte, []byte, error) {
	if len(data) < 1 {
		return 0, nil, errShort
	}
	return data[0], data[1:], nil
}
