package recsvc

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func TestRegisterAssignsStableIDs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	idA, existing, err := s.Register("shopd")
	if err != nil || existing {
		t.Fatalf("first register: id=%v existing=%v err=%v", idA, existing, err)
	}
	idB, _, err := s.Register("buyerd")
	if err != nil {
		t.Fatal(err)
	}
	if idA == idB {
		t.Error("two processes share a logical ID")
	}
	// Re-registering (a restart) returns the same ID and existing=true.
	idA2, existing, err := s.Register("shopd")
	if err != nil || !existing || idA2 != idA {
		t.Errorf("re-register: id=%v existing=%v err=%v, want %v/true", idA2, existing, err, idA)
	}
}

func TestTableSurvivesServiceRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	idA, _, _ := s1.Register("shopd")
	idB, _, _ := s1.Register("buyerd")

	// "Machine restart": reopen the service from the same directory.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	gotA, existing, _ := s2.Register("shopd")
	if !existing || gotA != idA {
		t.Errorf("shopd after restart: %v/%v, want %v/true", gotA, existing, idA)
	}
	gotB, existing, _ := s2.Register("buyerd")
	if !existing || gotB != idB {
		t.Errorf("buyerd after restart: %v/%v", gotB, existing)
	}
	// New registrations continue past the loaded maximum.
	idC, existing, _ := s2.Register("newproc")
	if existing || idC == idA || idC == idB {
		t.Errorf("newproc id %v collides", idC)
	}
}

func TestProcessesAndRegistered(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if s.Registered("x") {
		t.Error("unknown process reported registered")
	}
	s.Register("b")
	s.Register("a")
	if !s.Registered("a") {
		t.Error("registered process not reported")
	}
	if got := s.Processes(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Processes = %v", got)
	}
}

func TestAutoRestartCallback(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Register("shopd")

	// Without auto-restart, a crash notification is a no-op.
	if ch := s.NotifyCrash("shopd"); ch != nil {
		t.Error("NotifyCrash returned a channel with monitoring off")
	}

	restarted := make(chan string, 1)
	s.EnableAutoRestart(func(name string) error {
		restarted <- name
		return nil
	}, time.Millisecond)
	done := s.NotifyCrash("shopd")
	select {
	case name := <-restarted:
		if name != "shopd" {
			t.Errorf("restarted %q", name)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("restart callback never ran")
	}
	if err := <-done; err != nil {
		t.Errorf("restart error: %v", err)
	}

	// Errors from the restart function are delivered.
	s.EnableAutoRestart(func(string) error { return errors.New("boom") }, 0)
	if err := <-s.NotifyCrash("shopd"); err == nil {
		t.Error("restart error swallowed")
	}

	s.DisableAutoRestart()
	if ch := s.NotifyCrash("shopd"); ch != nil {
		t.Error("NotifyCrash active after DisableAutoRestart")
	}
}

func TestCorruptTableRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "recsvc.tab"), []byte("not a table line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("Open accepted a corrupt table")
	}
}

func TestEmptyLinesTolerated(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "recsvc.tab"), []byte("shopd 3\n\n\nbuyerd 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	id, existing, _ := s.Register("shopd")
	if !existing || id != 3 {
		t.Errorf("shopd = %v/%v, want 3/true", id, existing)
	}
	id, _, _ = s.Register("fresh")
	if id != 6 {
		t.Errorf("fresh = %v, want 6 (past max)", id)
	}
}
