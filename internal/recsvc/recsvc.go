// Package recsvc implements the per-machine recovery service of paper
// Section 2.4: "All processes that host persistent components register
// at start time with the Phoenix/App recovery service running on their
// machine. The recovery service monitors the abnormal exits of the
// registered processes and restarts those processes. It keeps the
// information of registered processes in a table and force writes
// updates to the table to its log to make the table persistent."
//
// The service has two responsibilities the runtime depends on:
//
//  1. Stable identity: it assigns each process name a logical process
//     ID that survives failures, so the method-call IDs a restarted
//     process generates match those on its log (Section 2.3). The
//     name→ID table is force-written to a file on every update.
//  2. Restart: when notified of an abnormal exit it invokes a restart
//     callback after a configurable delay and tells the restarted
//     process it is recovering, not booting for the first time.
package recsvc

import (
	"bufio"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/ids"
)

// RestartFunc restarts a crashed process by name. It is supplied by the
// machine runtime (which knows how to build a Process); the service
// only decides when to call it.
type RestartFunc func(procName string) error

// Service is one machine's recovery service.
type Service struct {
	tablePath string

	mu      sync.Mutex
	table   map[string]ids.ProcID
	nextID  ids.ProcID
	restart RestartFunc
	delay   time.Duration
	// monitoring is on only while a restart func is installed.
	stopped bool
}

// Open loads (or creates) the service's persistent process table in
// dir. The table survives machine restarts, keeping process IDs stable.
func Open(dir string) (*Service, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("recsvc: mkdir %s: %w", dir, err)
	}
	s := &Service{
		tablePath: filepath.Join(dir, "recsvc.tab"),
		table:     make(map[string]ids.ProcID),
		nextID:    1,
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Service) load() error {
	f, err := os.Open(s.tablePath)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("recsvc: open table: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var name string
		var id uint32
		if _, err := fmt.Sscanf(line, "%s %d", &name, &id); err != nil {
			return fmt.Errorf("recsvc: bad table line %q: %w", line, err)
		}
		s.table[name] = ids.ProcID(id)
		if ids.ProcID(id) >= s.nextID {
			s.nextID = ids.ProcID(id) + 1
		}
	}
	return sc.Err()
}

// save force-writes the whole table (it is tiny) — the paper's "force
// writes updates to the table to its log".
func (s *Service) save() error {
	names := make([]string, 0, len(s.table))
	for n := range s.table {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s %d\n", n, s.table[n])
	}
	tmp := s.tablePath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("recsvc: create table: %w", err)
	}
	if _, err := f.WriteString(b.String()); err != nil {
		f.Close()
		return fmt.Errorf("recsvc: write table: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("recsvc: sync table: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.tablePath); err != nil {
		return fmt.Errorf("recsvc: install table: %w", err)
	}
	return nil
}

// Register is called by a process at start (Section 4.1: "At process
// start, the recovery manager registers the process with the recovery
// service of the machine to obtain the virtual process ID"). It returns
// the process's stable logical ID and whether the process was already
// known — a restarted process learns it must recover.
func (s *Service) Register(procName string) (id ids.ProcID, existing bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.table[procName]; ok {
		return id, true, nil
	}
	id = s.nextID
	s.nextID++
	s.table[procName] = id
	if err := s.save(); err != nil {
		delete(s.table, procName)
		s.nextID--
		return 0, false, err
	}
	return id, false, nil
}

// Registered reports whether a process name is in the table.
func (s *Service) Registered(procName string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.table[procName]
	return ok
}

// Processes lists registered process names, sorted.
func (s *Service) Processes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.table))
	for n := range s.table {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EnableAutoRestart installs a restart callback: subsequent
// NotifyCrash calls restart the named process after delay.
func (s *Service) EnableAutoRestart(restart RestartFunc, delay time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.restart = restart
	s.delay = delay
	s.stopped = false
}

// DisableAutoRestart stops monitoring.
func (s *Service) DisableAutoRestart() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.restart = nil
	s.stopped = true
}

// NotifyCrash reports an abnormal process exit. If auto-restart is
// enabled the process is restarted asynchronously after the configured
// delay; the error from the restart function is delivered on the
// returned channel (nil channel when monitoring is off).
func (s *Service) NotifyCrash(procName string) <-chan error {
	s.mu.Lock()
	restart := s.restart
	delay := s.delay
	s.mu.Unlock()
	if restart == nil {
		return nil
	}
	done := make(chan error, 1)
	go func() {
		if delay > 0 {
			time.Sleep(delay)
		}
		done <- restart(procName)
	}()
	return done
}
