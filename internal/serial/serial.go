// Package serial captures and restores the field state of a component.
//
// Paper Section 4.2: "To save or restore the internal fields of a
// component, we use the .NET reflection mechanism to obtain its field
// types and values. ... We specially handle pointer fields referencing
// Phoenix/App components. For a remote component reference, we save the
// component URI; for a local component reference (to a component in the
// same context), we store the component ID. When restoring a pointer
// field, we re-obtain the pointer using the saved URI or component ID."
//
// The Go translation: a component is a pointer to a struct; its
// exported fields are captured with gob (unexported fields are
// transient, the idiom gob and encoding/json established; fields tagged
// `phoenix:"-"` are also skipped). Fields whose values implement
// RemoteRef or LocalRef — the proxy types of the runtime — are saved as
// a URI or component ID and re-resolved through a Resolver at restore
// time, because a proxy holds live transport state that must not be
// serialized.
package serial

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"

	"repro/internal/ids"
	"repro/internal/msg"
)

// RemoteRef is implemented by proxies to components in other contexts;
// the URI is what a context state record stores for the field.
type RemoteRef interface {
	PhoenixURI() ids.URI
}

// LocalRef is implemented by handles to components within the same
// context (a parent's reference to its subordinate); the component ID
// is what the state record stores.
type LocalRef interface {
	PhoenixLocalID() ids.CompID
}

// Resolver re-obtains component references when a state record is
// restored (paper: "we re-obtain the pointer using the saved URI or
// component ID"). The returned value must be assignable to the field
// type it is restored into.
type Resolver interface {
	ResolveRemote(u ids.URI, fieldType reflect.Type) (any, error)
	ResolveLocal(id ids.CompID, fieldType reflect.Type) (any, error)
}

// FieldKind tags how a field was captured.
type FieldKind uint8

const (
	// KindValue is an ordinary gob-encoded value.
	KindValue FieldKind = iota
	// KindRemoteRef is a remote component reference stored as a URI.
	KindRemoteRef
	// KindLocalRef is a same-context component reference stored as a
	// component ID.
	KindLocalRef
	// KindNilRef is a nil component reference.
	KindNilRef
)

// FieldState is one captured field.
type FieldState struct {
	Name string
	Kind FieldKind
	// Data is the gob encoding of the value (KindValue), the URI bytes
	// (KindRemoteRef), or the decimal component ID (KindLocalRef).
	Data []byte
}

// State is the captured field state of one component, the unit stored
// inside a context state record.
type State struct {
	// TypeName records the component's Go type for sanity checking at
	// restore.
	TypeName string
	Fields   []FieldState
}

// Capture reads the exported fields of obj (a pointer to struct) into a
// State. The context must be quiescent — not serving a call — exactly
// as Section 4.2 requires ("context states are saved only when the
// context is not active"), so field values alone suffice.
func Capture(obj any) (*State, error) {
	v, t, err := structOf(obj)
	if err != nil {
		return nil, err
	}
	st := &State{TypeName: t.String()}
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() || f.Tag.Get("phoenix") == "-" {
			continue
		}
		fv := v.Field(i)
		fs, err := captureField(f.Name, fv)
		if err != nil {
			return nil, fmt.Errorf("serial: capture %s.%s: %w", t, f.Name, err)
		}
		st.Fields = append(st.Fields, fs)
	}
	return st, nil
}

func captureField(name string, fv reflect.Value) (FieldState, error) {
	if isRefType(fv.Type()) {
		if fv.Kind() == reflect.Interface || fv.Kind() == reflect.Pointer {
			if fv.IsNil() {
				return FieldState{Name: name, Kind: KindNilRef}, nil
			}
		}
		if r, ok := fv.Interface().(RemoteRef); ok {
			return FieldState{Name: name, Kind: KindRemoteRef, Data: []byte(r.PhoenixURI())}, nil
		}
		if r, ok := fv.Interface().(LocalRef); ok {
			return FieldState{Name: name, Kind: KindLocalRef,
				Data: []byte(fmt.Sprintf("%d", r.PhoenixLocalID()))}, nil
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).EncodeValue(fv); err != nil {
		return FieldState{}, err
	}
	return FieldState{Name: name, Kind: KindValue, Data: buf.Bytes()}, nil
}

// Restore writes the captured state back into obj, resolving component
// references through r. obj must be a fresh instance of the same type
// Capture saw. Fields present in obj but absent from the state keep
// their zero values; fields in the state with no match in obj are an
// error (the state and the code disagree).
func Restore(obj any, st *State, r Resolver) error {
	v, t, err := structOf(obj)
	if err != nil {
		return err
	}
	if st.TypeName != t.String() {
		return fmt.Errorf("serial: state is for %s, object is %s", st.TypeName, t)
	}
	for _, fs := range st.Fields {
		sf, ok := t.FieldByName(fs.Name)
		if !ok || !sf.IsExported() {
			return fmt.Errorf("serial: state field %s.%s not found in object", t, fs.Name)
		}
		fv := v.FieldByIndex(sf.Index)
		if err := restoreField(fv, fs, r); err != nil {
			return fmt.Errorf("serial: restore %s.%s: %w", t, fs.Name, err)
		}
	}
	return nil
}

func restoreField(fv reflect.Value, fs FieldState, r Resolver) error {
	switch fs.Kind {
	case KindValue:
		return gob.NewDecoder(bytes.NewReader(fs.Data)).DecodeValue(fv)
	case KindNilRef:
		fv.Set(reflect.Zero(fv.Type()))
		return nil
	case KindRemoteRef:
		if r == nil {
			return fmt.Errorf("remote reference %q needs a resolver", fs.Data)
		}
		val, err := r.ResolveRemote(ids.URI(fs.Data), fv.Type())
		if err != nil {
			return err
		}
		return assign(fv, val)
	case KindLocalRef:
		if r == nil {
			return fmt.Errorf("local reference %q needs a resolver", fs.Data)
		}
		var id ids.CompID
		if _, err := fmt.Sscanf(string(fs.Data), "%d", &id); err != nil {
			return fmt.Errorf("bad local ref %q: %w", fs.Data, err)
		}
		val, err := r.ResolveLocal(id, fv.Type())
		if err != nil {
			return err
		}
		return assign(fv, val)
	default:
		return fmt.Errorf("unknown field kind %d", fs.Kind)
	}
}

func assign(fv reflect.Value, val any) error {
	rv := reflect.ValueOf(val)
	if !rv.IsValid() {
		fv.Set(reflect.Zero(fv.Type()))
		return nil
	}
	if !rv.Type().AssignableTo(fv.Type()) {
		return fmt.Errorf("resolver returned %s, field wants %s", rv.Type(), fv.Type())
	}
	fv.Set(rv)
	return nil
}

func structOf(obj any) (reflect.Value, reflect.Type, error) {
	v := reflect.ValueOf(obj)
	if !v.IsValid() || v.Kind() != reflect.Pointer || v.IsNil() {
		return reflect.Value{}, nil, fmt.Errorf("serial: component must be a non-nil pointer to struct, got %T", obj)
	}
	v = v.Elem()
	if v.Kind() != reflect.Struct {
		return reflect.Value{}, nil, fmt.Errorf("serial: component must point to a struct, got %T", obj)
	}
	return v, v.Type(), nil
}

var (
	remoteRefType = reflect.TypeOf((*RemoteRef)(nil)).Elem()
	localRefType  = reflect.TypeOf((*LocalRef)(nil)).Elem()
)

func isRefType(t reflect.Type) bool {
	return t.Implements(remoteRefType) || t.Implements(localRefType)
}

// verState is the version byte opening a binary State encoding. Like
// the message-envelope version bytes it lives in 0x80..0xF7, which no
// gob stream can start with, so DecodeState can tell the two formats
// apart and old captured states keep restoring (DESIGN.md Section 10).
const verState = 0xC5

// Encode serializes the State for inclusion in a log record: 0xC5,
// TypeName, a field count, then Name/Kind/Data per field, using the
// msg codec primitives. Field values inside Data stay gob — their
// types are open, exactly like call arguments.
func (s *State) Encode() ([]byte, error) {
	dst := []byte{verState}
	dst = msg.AppendString(dst, s.TypeName)
	dst = msg.AppendUvarint(dst, uint64(len(s.Fields)))
	for i := range s.Fields {
		f := &s.Fields[i]
		dst = msg.AppendString(dst, f.Name)
		dst = append(dst, byte(f.Kind))
		dst = msg.AppendBytes(dst, f.Data)
	}
	return dst, nil
}

// DecodeState deserializes a State produced by Encode, in either the
// binary format or the legacy gob format.
func DecodeState(data []byte) (*State, error) {
	if len(data) > 0 && data[0] == verState {
		s, err := decodeStateBinary(data[1:])
		if err != nil {
			return nil, fmt.Errorf("serial: decode state: %w", err)
		}
		return s, nil
	}
	var s State
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return nil, fmt.Errorf("serial: decode state: %w", err)
	}
	return &s, nil
}

func decodeStateBinary(data []byte) (*State, error) {
	var s State
	var err error
	var n uint64
	if s.TypeName, data, err = msg.ConsumeString(data); err != nil {
		return nil, err
	}
	if n, data, err = msg.ConsumeUvarint(data); err != nil {
		return nil, err
	}
	if n > uint64(len(data)) { // each field takes at least one byte
		return nil, fmt.Errorf("field count %d exceeds %d remaining bytes", n, len(data))
	}
	s.Fields = make([]FieldState, n)
	for i := range s.Fields {
		f := &s.Fields[i]
		if f.Name, data, err = msg.ConsumeString(data); err != nil {
			return nil, err
		}
		var k byte
		if k, data, err = msg.ConsumeByte(data); err != nil {
			return nil, err
		}
		f.Kind = FieldKind(k)
		if f.Data, data, err = msg.ConsumeBytes(data); err != nil {
			return nil, err
		}
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%d trailing bytes", len(data))
	}
	return &s, nil
}
