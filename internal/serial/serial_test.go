package serial

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

// fakeRef is a stand-in for the runtime's remote proxy type.
type fakeRef struct {
	uri  ids.URI
	live bool // not serializable state, must not be captured
}

func (r *fakeRef) PhoenixURI() ids.URI { return r.uri }

// fakeLocal is a stand-in for a same-context subordinate handle.
type fakeLocal struct {
	id ids.CompID
}

func (r *fakeLocal) PhoenixLocalID() ids.CompID { return r.id }

type fakeResolver struct {
	remoteCalls []ids.URI
	localCalls  []ids.CompID
	failRemote  bool
}

func (f *fakeResolver) ResolveRemote(u ids.URI, t reflect.Type) (any, error) {
	if f.failRemote {
		return nil, fmt.Errorf("no such component %s", u)
	}
	f.remoteCalls = append(f.remoteCalls, u)
	return &fakeRef{uri: u, live: true}, nil
}

func (f *fakeResolver) ResolveLocal(id ids.CompID, t reflect.Type) (any, error) {
	f.localCalls = append(f.localCalls, id)
	return &fakeLocal{id: id}, nil
}

type basket struct {
	Items map[string]int
	Total float64

	Store  *fakeRef   // remote component reference
	Helper *fakeLocal // same-context subordinate reference

	Cache   []byte `phoenix:"-"` // explicitly transient
	scratch int    // unexported: transient
}

func TestCaptureRestoreRoundTrip(t *testing.T) {
	orig := &basket{
		Items:   map[string]int{"tp-book": 2, "recovery-book": 1},
		Total:   99.95,
		Store:   &fakeRef{uri: ids.MakeURI("evo2", "shop", "Store1"), live: true},
		Helper:  &fakeLocal{id: 7},
		Cache:   []byte("do not persist"),
		scratch: 42,
	}
	st, err := Capture(orig)
	if err != nil {
		t.Fatal(err)
	}
	if st.TypeName != "serial.basket" {
		t.Errorf("TypeName = %q", st.TypeName)
	}

	data, err := st.Encode()
	if err != nil {
		t.Fatal(err)
	}
	st2, err := DecodeState(data)
	if err != nil {
		t.Fatal(err)
	}

	fresh := &basket{}
	res := &fakeResolver{}
	if err := Restore(fresh, st2, res); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.Items, orig.Items) || fresh.Total != orig.Total {
		t.Errorf("values not restored: %+v", fresh)
	}
	if fresh.Store == nil || fresh.Store.uri != orig.Store.uri {
		t.Errorf("remote ref not resolved: %+v", fresh.Store)
	}
	if fresh.Helper == nil || fresh.Helper.id != 7 {
		t.Errorf("local ref not resolved: %+v", fresh.Helper)
	}
	if fresh.Cache != nil {
		t.Error("phoenix:\"-\" field was persisted")
	}
	if fresh.scratch != 0 {
		t.Error("unexported field was persisted")
	}
	if len(res.remoteCalls) != 1 || res.remoteCalls[0] != orig.Store.uri {
		t.Errorf("resolver remote calls = %v", res.remoteCalls)
	}
	if len(res.localCalls) != 1 || res.localCalls[0] != 7 {
		t.Errorf("resolver local calls = %v", res.localCalls)
	}
}

func TestNilRefsRoundTrip(t *testing.T) {
	orig := &basket{Items: map[string]int{}}
	st, err := Capture(orig)
	if err != nil {
		t.Fatal(err)
	}
	fresh := &basket{Store: &fakeRef{uri: "stale"}, Helper: &fakeLocal{id: 1}}
	if err := Restore(fresh, st, &fakeResolver{}); err != nil {
		t.Fatal(err)
	}
	if fresh.Store != nil || fresh.Helper != nil {
		t.Errorf("nil refs not restored as nil: %+v %+v", fresh.Store, fresh.Helper)
	}
}

func TestRestoreTypeMismatch(t *testing.T) {
	type other struct{ X int }
	st, err := Capture(&basket{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Restore(&other{}, st, nil); err == nil {
		t.Error("restore into wrong type succeeded")
	}
}

func TestRestoreUnknownField(t *testing.T) {
	st := &State{TypeName: "serial.basket", Fields: []FieldState{
		{Name: "Vanished", Kind: KindValue, Data: nil},
	}}
	err := Restore(&basket{}, st, nil)
	if err == nil || !strings.Contains(err.Error(), "Vanished") {
		t.Errorf("err = %v, want unknown-field error naming Vanished", err)
	}
}

func TestRestoreRemoteRefNeedsResolver(t *testing.T) {
	st, err := Capture(&basket{Store: &fakeRef{uri: "phoenix://m/p/c"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := Restore(&basket{}, st, nil); err == nil {
		t.Error("restore of remote ref without resolver succeeded")
	}
}

func TestRestoreResolverFailurePropagates(t *testing.T) {
	st, err := Capture(&basket{Store: &fakeRef{uri: "phoenix://m/p/c"}})
	if err != nil {
		t.Fatal(err)
	}
	err = Restore(&basket{}, st, &fakeResolver{failRemote: true})
	if err == nil || !strings.Contains(err.Error(), "no such component") {
		t.Errorf("err = %v", err)
	}
}

func TestCaptureRejectsNonStructPointer(t *testing.T) {
	for _, obj := range []any{nil, 42, "s", &[]int{1}, (*basket)(nil)} {
		if _, err := Capture(obj); err == nil {
			t.Errorf("Capture(%T) succeeded", obj)
		}
	}
}

func TestRestoreRejectsNonStructPointer(t *testing.T) {
	if err := Restore(7, &State{}, nil); err == nil {
		t.Error("Restore(7) succeeded")
	}
}

func TestCaptureUnencodableField(t *testing.T) {
	type bad struct {
		F func() // gob cannot encode funcs
	}
	if _, err := Capture(&bad{F: func() {}}); err == nil {
		t.Error("Capture of func field succeeded")
	}
}

func TestDecodeStateGarbage(t *testing.T) {
	if _, err := DecodeState([]byte("garbage")); err == nil {
		t.Error("DecodeState accepted garbage")
	}
}

func TestRestoreUnknownKind(t *testing.T) {
	st := &State{TypeName: "serial.basket", Fields: []FieldState{
		{Name: "Total", Kind: FieldKind(250)},
	}}
	if err := Restore(&basket{}, st, nil); err == nil {
		t.Error("unknown kind accepted")
	}
}

// Property: for components with only plain exported value fields,
// capture→encode→decode→restore reproduces the value exactly.
func TestPlainStateRoundTripProperty(t *testing.T) {
	type plain struct {
		A int64
		B string
		C []int32
		D map[string]bool
		E float64
	}
	f := func(a int64, b string, c []int32, d map[string]bool, e float64) bool {
		orig := &plain{A: a, B: b, C: c, D: d, E: e}
		st, err := Capture(orig)
		if err != nil {
			return false
		}
		data, err := st.Encode()
		if err != nil {
			return false
		}
		st2, err := DecodeState(data)
		if err != nil {
			return false
		}
		fresh := &plain{}
		if err := Restore(fresh, st2, nil); err != nil {
			return false
		}
		// gob turns empty slices/maps into nil; normalize.
		norm := func(p *plain) {
			if len(p.C) == 0 {
				p.C = nil
			}
			if len(p.D) == 0 {
				p.D = nil
			}
		}
		norm(orig)
		norm(fresh)
		if e != e { // NaN: compare bits apart
			return fresh.E != fresh.E && reflect.DeepEqual(
				&plain{A: orig.A, B: orig.B, C: orig.C, D: orig.D},
				&plain{A: fresh.A, B: fresh.B, C: fresh.C, D: fresh.D})
		}
		return reflect.DeepEqual(orig, fresh)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestStateCodecFormats: the binary State encoding must round-trip,
// and a legacy gob encoding of the same State must decode identically
// (state records written before the binary codec keep restoring).
func TestStateCodecFormats(t *testing.T) {
	want := &State{
		TypeName: "serial.plain",
		Fields: []FieldState{
			{Name: "A", Kind: KindValue, Data: []byte{3, 4, 0, 42}},
			{Name: "R", Kind: KindRemoteRef, Data: []byte("phoenix://m/p/c")},
			{Name: "L", Kind: KindLocalRef, Data: []byte("7")},
			{Name: "N", Kind: KindNilRef},
		},
	}
	bin, err := want.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if bin[0] != verState {
		t.Fatalf("version byte %#x, want %#x", bin[0], verState)
	}
	fromBin, err := DecodeState(bin)
	if err != nil {
		t.Fatal(err)
	}

	var legacy bytes.Buffer
	if err := gob.NewEncoder(&legacy).Encode(want); err != nil {
		t.Fatal(err)
	}
	fromGob, err := DecodeState(legacy.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	norm := func(s *State) {
		for i := range s.Fields {
			if len(s.Fields[i].Data) == 0 {
				s.Fields[i].Data = nil
			}
		}
	}
	norm(fromBin)
	norm(fromGob)
	norm(want)
	if !reflect.DeepEqual(fromBin, want) {
		t.Errorf("binary round trip mismatch:\n  got  %+v\n  want %+v", fromBin, want)
	}
	if !reflect.DeepEqual(fromBin, fromGob) {
		t.Errorf("binary and legacy decodes differ:\n  bin %+v\n  gob %+v", fromBin, fromGob)
	}

	// Truncations must error cleanly, never panic.
	for n := 1; n < len(bin); n++ {
		if _, err := DecodeState(bin[:n]); err == nil {
			t.Fatalf("decode of %d/%d-byte prefix succeeded", n, len(bin))
		}
	}
}
