package phoenix_test

import (
	"errors"
	"fmt"
	"log"
	"os"
	"testing"
	"time"

	phoenix "repro"
)

// Account is a persistent component used by the public-API tests.
type Account struct {
	Balance int
	History []string
}

// Deposit applies a delta and journals it.
func (a *Account) Deposit(amount int, memo string) (int, error) {
	if a.Balance+amount < 0 {
		return 0, errors.New("insufficient funds")
	}
	a.Balance += amount
	a.History = append(a.History, memo)
	return a.Balance, nil
}

// Statement lists the journal (read-only).
func (a *Account) Statement() ([]string, error) {
	out := make([]string, len(a.History))
	copy(out, a.History)
	return out, nil
}

func testCfg() phoenix.Config {
	return phoenix.Config{
		LogMode:          phoenix.LogOptimized,
		SpecializedTypes: true,
		RetryInterval:    2 * time.Millisecond,
		RetryLimit:       100,
	}
}

func TestPublicAPIRoundTripAndRecovery(t *testing.T) {
	u, err := phoenix.NewUniverse(phoenix.UniverseConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	m, err := u.AddMachine("evo1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.StartProcess("bankd", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	h, err := p.Create("Account", &Account{},
		phoenix.WithReadOnlyMethods("Statement"))
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	if _, err := ref.Call("Deposit", 100, "payday"); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Call("Deposit", -30, "rent"); err != nil {
		t.Fatal(err)
	}
	// Application error: balance unchanged, component alive.
	if _, err := ref.Call("Deposit", -500, "yacht"); err == nil {
		t.Fatal("overdraft accepted")
	} else {
		var appErr *phoenix.AppError
		if !errors.As(err, &appErr) {
			t.Fatalf("err = %v, want AppError", err)
		}
	}

	p.Crash()
	p2, err := m.StartProcess("bankd", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if !p2.Recovered() {
		t.Error("restart did not recover")
	}
	res, err := ref.Call("Statement")
	if err != nil {
		t.Fatal(err)
	}
	hist := res[0].([]string)
	if len(hist) != 2 || hist[0] != "payday" || hist[1] != "rent" {
		t.Errorf("history after recovery = %v", hist)
	}
	h2, ok := p2.Lookup("Account")
	if !ok {
		t.Fatal("Lookup failed after recovery")
	}
	if got := h2.Object().(*Account).Balance; got != 70 {
		t.Errorf("balance = %d, want 70", got)
	}
}

func TestPublicAPIInjector(t *testing.T) {
	u, err := phoenix.NewUniverse(phoenix.UniverseConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	m, err := u.AddMachine("evo1")
	if err != nil {
		t.Fatal(err)
	}
	inj := phoenix.NewInjector().CrashAt(phoenix.PointServerAfterExecute, 1)
	cfg := testCfg()
	cfg.Injector = inj
	m.EnableAutoRestart(cfg, 2*time.Millisecond)
	p, err := m.StartProcess("bankd", cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := p.Create("Account", &Account{})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	if _, err := ref.Call("Deposit", 10, "m"); err != nil {
		t.Fatal(err)
	}
	if inj.Fired(phoenix.PointServerAfterExecute) != 1 {
		t.Error("injection did not fire")
	}
}

func TestPublicAPITCPNetwork(t *testing.T) {
	tcp := phoenix.NewTCPNetwork()
	defer tcp.Close()
	addr := "127.0.0.1:0"
	_ = addr
	// Dynamic port: listen on :0 is not supported by the address map
	// pattern, so pick a free port the usual way.
	u, err := phoenix.NewUniverse(phoenix.UniverseConfig{
		Dir: t.TempDir(),
		Net: tcp,
		AddrFor: func(machine, process string) string {
			return "127.0.0.1:39741"
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := u.AddMachine("evo1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.StartProcess("bankd", testCfg())
	if err != nil {
		t.Skipf("port busy: %v", err)
	}
	defer p.Close()
	h, err := p.Create("Account", &Account{})
	if err != nil {
		t.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	res, err := ref.Call("Deposit", 5, "tcp")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(int) != 5 {
		t.Errorf("Deposit over TCP -> %v", res[0])
	}
}

func TestBindStubOverPublicAPI(t *testing.T) {
	u, err := phoenix.NewUniverse(phoenix.UniverseConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := u.AddMachine("evo1")
	p, err := m.StartProcess("bankd", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	h, err := p.Create("Account", &Account{})
	if err != nil {
		t.Fatal(err)
	}
	var client struct {
		Deposit   func(amount int, memo string) (int, error)
		Statement func() ([]string, error)
	}
	if err := phoenix.BindStub(&client, u.ExternalRef(h.URI())); err != nil {
		t.Fatal(err)
	}
	bal, err := client.Deposit(50, "typed")
	if err != nil || bal != 50 {
		t.Fatalf("Deposit = %d, %v", bal, err)
	}
	hist, err := client.Statement()
	if err != nil || len(hist) != 1 || hist[0] != "typed" {
		t.Errorf("Statement = %v, %v", hist, err)
	}
}

func TestMakeURI(t *testing.T) {
	u := phoenix.MakeURI("m", "p", "c")
	if u != phoenix.URI("phoenix://m/p/c") {
		t.Errorf("MakeURI = %q", u)
	}
}

// Example demonstrates the core loop: host a persistent component,
// crash the process, recover, observe intact state.
func Example() {
	dir, _ := os.MkdirTemp("", "phoenix-example-*")
	defer os.RemoveAll(dir)

	u, err := phoenix.NewUniverse(phoenix.UniverseConfig{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	m, _ := u.AddMachine("evo1")
	cfg := phoenix.Config{LogMode: phoenix.LogOptimized, SpecializedTypes: true}
	p, _ := m.StartProcess("bankd", cfg)

	h, err := p.Create("Account", &Account{})
	if err != nil {
		log.Fatal(err)
	}
	ref := u.ExternalRef(h.URI())
	ref.Call("Deposit", 100, "payday")
	ref.Call("Deposit", -30, "rent")

	p.Crash() // all volatile state gone

	p, _ = m.StartProcess("bankd", cfg) // redo recovery replays the log
	res, _ := ref.Call("Deposit", 0, "check")
	fmt.Println("balance after crash:", res[0])
	p.Close()
	// Output: balance after crash: 70
}
